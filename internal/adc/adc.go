// Package adc models the successive-approximation ADC used by both
// EffiCSense architectures (the paper notes the SAR is the most common
// choice for biomedical front-ends and uses it throughout). The model
// captures the non-idealities that matter at system level: capacitive-DAC
// mismatch (binary-weighted unit capacitors with Pelgrom-style matching),
// comparator input noise, and the finite quantisation grid. An ideal
// converter is provided as the reference for ENOB-style comparisons.
package adc

import (
	"math"

	"efficsense/internal/xrand"
)

// SAR is an N-bit successive-approximation converter with a bipolar input
// range [-VFS/2, +VFS/2].
type SAR struct {
	bits    int
	vfs     float64
	lsb     float64   // ideal quantisation step, precomputed
	weights []float64 // actual (mismatched) bit weights, in volts
	ideal   []float64 // ideal bit weights, in volts
	compStd float64   // comparator input-referred noise sigma (V)
	rng     *xrand.Source
}

// Config describes a SAR instance.
type Config struct {
	// Bits is the resolution N (Table III sweeps 6–8).
	Bits int
	// VFS is the full-scale range (V), Table III: 2 V.
	VFS float64
	// UnitCap is the DAC unit capacitor C_u (F). Together with
	// MismatchCoeff it sets the per-bit weight errors. Zero disables
	// mismatch.
	UnitCap float64
	// MismatchCoeff is the relative 1-sigma mismatch of a single unit
	// capacitor (tech.Params.MismatchSigma(UnitCap)).
	MismatchCoeff float64
	// ComparatorNoise is the comparator input-referred noise sigma (V).
	ComparatorNoise float64
	// Seed fixes the mismatch realisation and noise stream.
	Seed int64
}

// New builds a SAR ADC. It panics on a non-positive resolution or range
// (programming errors, not data errors).
func New(cfg Config) *SAR {
	if cfg.Bits < 1 || cfg.Bits > 24 {
		panic("adc: Bits must be in [1, 24]")
	}
	if cfg.VFS <= 0 {
		panic("adc: VFS must be positive")
	}
	rng := xrand.Derive(cfg.Seed, "sar-adc")
	n := cfg.Bits
	s := &SAR{
		bits:    n,
		vfs:     cfg.VFS,
		lsb:     cfg.VFS / math.Pow(2, float64(n)),
		weights: make([]float64, n),
		ideal:   make([]float64, n),
		compStd: cfg.ComparatorNoise,
		rng:     rng.Derive("comparator"),
	}
	mismatchRng := rng.Derive("mismatch")
	// Bit i (MSB first) uses 2^(n-1-i) unit caps; the relative error of a
	// parallel combination of k units shrinks as 1/sqrt(k).
	totalIdeal := math.Pow(2, float64(n)) // total units incl. dummy LSB cap
	for i := 0; i < n; i++ {
		units := math.Pow(2, float64(n-1-i))
		rel := 0.0
		if cfg.MismatchCoeff > 0 {
			rel = mismatchRng.Normal(0, cfg.MismatchCoeff/math.Sqrt(units))
		}
		s.ideal[i] = cfg.VFS * units / totalIdeal
		s.weights[i] = s.ideal[i] * (1 + rel)
	}
	return s
}

// Bits returns the resolution.
func (s *SAR) Bits() int { return s.bits }

// VFS returns the full-scale range.
func (s *SAR) VFS() float64 { return s.vfs }

// LSB returns the ideal quantisation step.
func (s *SAR) LSB() float64 { return s.lsb }

// ConvertCode digitises one voltage and returns the raw output code in
// [0, 2^N). The successive approximation walks the *actual* (mismatched)
// weights while the backend interprets codes with ideal weights — exactly
// how static DAC errors become INL in silicon.
func (s *SAR) ConvertCode(v float64) int {
	// Refer the bipolar input to the DAC's unipolar search.
	target := v + s.vfs/2
	code := 0
	acc := 0.0
	for i := 0; i < s.bits; i++ {
		trial := acc + s.weights[i]
		noise := 0.0
		if s.compStd > 0 {
			noise = s.rng.Normal(0, s.compStd)
		}
		if target+noise >= trial {
			acc = trial
			code |= 1 << (s.bits - 1 - i)
		}
	}
	return code
}

// CodeToVoltage converts an output code back to the (ideal) mid-tread
// voltage the backend assigns to it.
func (s *SAR) CodeToVoltage(code int) float64 {
	return (float64(code)+0.5)*s.LSB() - s.vfs/2
}

// Convert digitises a waveform, returning the backend voltages.
func (s *SAR) Convert(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = s.CodeToVoltage(s.ConvertCode(v))
	}
	return out
}

// ConvertInto digitises a waveform into caller-owned storage — Convert
// without the allocation. dst is grown (reallocating only when capacity is
// exceeded) to len(in) and fully overwritten; the returned slice aliases
// it. dst may be the input slice itself (conversion is element-wise). The
// comparator noise stream is consumed exactly as Convert would, so the two
// are interchangeable mid-stream.
func (s *SAR) ConvertInto(dst, in []float64) []float64 {
	if cap(dst) < len(in) {
		dst = make([]float64, len(in))
	}
	dst = dst[:len(in)]
	for i, v := range in {
		dst[i] = s.CodeToVoltage(s.ConvertCode(v))
	}
	return dst
}

// ConvertCodes digitises a waveform, returning raw codes.
func (s *SAR) ConvertCodes(in []float64) []int {
	out := make([]int, len(in))
	for i, v := range in {
		out[i] = s.ConvertCode(v)
	}
	return out
}

// INL returns the integral nonlinearity (in LSB) at every code, measured
// from the actual transition levels implied by the mismatched weights.
// Useful for characterisation plots and tests.
func (s *SAR) INL() []float64 {
	n := 1 << s.bits
	inl := make([]float64, n)
	lsb := s.LSB()
	for code := 0; code < n; code++ {
		var actual float64
		for i := 0; i < s.bits; i++ {
			if code&(1<<(s.bits-1-i)) != 0 {
				actual += s.weights[i]
			}
		}
		ideal := float64(code) * lsb
		inl[code] = (actual - ideal) / lsb
	}
	return inl
}

// Ideal is a noiseless, perfectly matched mid-tread quantiser with the
// same interface, used as the reference converter.
type Ideal struct {
	bits int
	vfs  float64
}

// NewIdeal returns an ideal N-bit quantiser over [-vfs/2, +vfs/2].
func NewIdeal(bits int, vfs float64) *Ideal {
	if bits < 1 || vfs <= 0 {
		panic("adc: invalid ideal quantiser parameters")
	}
	return &Ideal{bits: bits, vfs: vfs}
}

// LSB returns the quantisation step.
func (q *Ideal) LSB() float64 { return q.vfs / math.Pow(2, float64(q.bits)) }

// Convert quantises the waveform.
func (q *Ideal) Convert(in []float64) []float64 {
	out := make([]float64, len(in))
	lsb := q.LSB()
	half := q.vfs / 2
	maxCode := math.Pow(2, float64(q.bits)) - 1
	for i, v := range in {
		code := math.Floor((v + half) / lsb)
		if code < 0 {
			code = 0
		}
		if code > maxCode {
			code = maxCode
		}
		out[i] = (code+0.5)*lsb - half
	}
	return out
}
