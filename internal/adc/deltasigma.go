package adc

import (
	"math"

	"efficsense/internal/dsp"
)

// DeltaSigma is a behavioural first-order, single-bit ΔΣ modulator with a
// decimating lowpass backend. The paper's Table I cites ΔΣ behavioural
// modelling ([11]) as the classical mixed-signal methodology EffiCSense
// generalises; this block demonstrates how an alternative converter slots
// into the library next to the SAR (Step 1's "choose a suitable circuit
// topology for each block").
type DeltaSigma struct {
	// OSR is the oversampling ratio: the modulator runs at OSR × the
	// output rate.
	OSR int
	// VFS is the full-scale range (V), bipolar [-VFS/2, +VFS/2].
	VFS float64
	// IntegratorLeak models finite integrator DC gain as a per-sample
	// retention factor (1 = ideal; 0.999 ≈ 60 dB).
	IntegratorLeak float64
	// DecimationTaps sizes the decimation FIR (default 255).
	DecimationTaps int
}

// NewDeltaSigma returns a modulator with the given oversampling ratio and
// full scale. It panics on non-physical parameters.
func NewDeltaSigma(osr int, vfs float64) *DeltaSigma {
	if osr < 4 {
		panic("adc: DeltaSigma OSR must be >= 4")
	}
	if vfs <= 0 {
		panic("adc: DeltaSigma VFS must be positive")
	}
	return &DeltaSigma{OSR: osr, VFS: vfs, IntegratorLeak: 1}
}

// Modulate runs the first-order loop over the oversampled input and
// returns the ±VFS/2 bitstream.
func (d *DeltaSigma) Modulate(in []float64) []float64 {
	out := make([]float64, len(in))
	half := d.VFS / 2
	leak := d.IntegratorLeak
	if leak <= 0 || leak > 1 {
		leak = 1
	}
	var integ, fb float64
	for i, x := range in {
		integ = integ*leak + (x - fb)
		if integ >= 0 {
			out[i] = half
		} else {
			out[i] = -half
		}
		fb = out[i]
	}
	return out
}

// Convert digitises an oversampled waveform (sampled at OSR × the output
// rate) and returns the decimated output at the output rate: modulate,
// lowpass at 0.45 × the output Nyquist, downsample by OSR.
func (d *DeltaSigma) Convert(in []float64) []float64 {
	bits := d.Modulate(in)
	taps := d.DecimationTaps
	if taps <= 0 {
		taps = 255
	}
	// Normalised rates: output band is 1/(2·OSR) of the modulator rate.
	fir := dsp.LowpassFIR(0.45/float64(d.OSR), 1, taps)
	filtered := fir.Apply(bits)
	return dsp.Decimate(filtered, d.OSR)
}

// TheoreticalSQNR returns the ideal first-order ΔΣ in-band
// signal-to-quantisation-noise ratio (dB) for a full-scale sine:
// SQNR = 6.02·1 + 1.76 − 5.17 + 30·log10(OSR).
func (d *DeltaSigma) TheoreticalSQNR() float64 {
	return 6.02 + 1.76 - 5.17 + 30*math.Log10(float64(d.OSR))
}
