package adc

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/siggen"
)

func TestDeltaSigmaBitstreamIsBinary(t *testing.T) {
	d := NewDeltaSigma(32, 2)
	in := siggen.Sine(4096, 10, 32*256, 0.8, 0)
	bits := d.Modulate(in)
	for i, b := range bits {
		if b != 1 && b != -1 {
			t.Fatalf("bit %d = %g, want ±1", i, b)
		}
	}
}

func TestDeltaSigmaTracksDC(t *testing.T) {
	// The bitstream mean must equal the DC input (the defining ΔΣ
	// property).
	d := NewDeltaSigma(32, 2)
	for _, dc := range []float64{-0.7, -0.2, 0, 0.3, 0.9} {
		in := make([]float64, 20000)
		for i := range in {
			in[i] = dc
		}
		bits := d.Modulate(in)
		if got := dsp.Mean(bits[1000:]); math.Abs(got-dc) > 0.01 {
			t.Fatalf("bitstream mean %g, want %g", got, dc)
		}
	}
}

func TestDeltaSigmaConvertSNR(t *testing.T) {
	// A first-order modulator at OSR 64 should comfortably exceed 40 dB
	// in-band SNDR on a near-full-scale sine.
	const osr = 64
	const outRate = 1024.0
	d := NewDeltaSigma(osr, 2)
	in := siggen.Sine(1<<17, 31, osr*outRate, 0.8, 0)
	out := d.Convert(in)
	m := dsp.AnalyzeSine(out[200:], outRate)
	if m.SNDRdB < 40 {
		t.Fatalf("ΔΣ SNDR = %g dB, want > 40", m.SNDRdB)
	}
	// Higher OSR buys SNR (the noise-shaping law).
	d2 := NewDeltaSigma(16, 2)
	in2 := siggen.Sine(1<<15, 31, 16*outRate, 0.8, 0)
	m2 := dsp.AnalyzeSine(d2.Convert(in2)[200:], outRate)
	if m2.SNDRdB >= m.SNDRdB {
		t.Fatalf("OSR 16 SNDR %g should trail OSR 64 SNDR %g", m2.SNDRdB, m.SNDRdB)
	}
}

func TestDeltaSigmaLeakDegrades(t *testing.T) {
	const osr = 64
	const outRate = 1024.0
	in := siggen.Sine(1<<16, 31, osr*outRate, 0.8, 0)
	ideal := NewDeltaSigma(osr, 2)
	leaky := NewDeltaSigma(osr, 2)
	leaky.IntegratorLeak = 0.95 // gross leak: ~26 dB integrator gain
	mi := dsp.AnalyzeSine(ideal.Convert(in)[200:], outRate)
	ml := dsp.AnalyzeSine(leaky.Convert(in)[200:], outRate)
	if ml.SNDRdB >= mi.SNDRdB {
		t.Fatalf("integrator leak should cost SNDR: %g vs %g", ml.SNDRdB, mi.SNDRdB)
	}
}

func TestDeltaSigmaOutputLength(t *testing.T) {
	d := NewDeltaSigma(16, 2)
	out := d.Convert(make([]float64, 1600))
	if len(out) != 100 {
		t.Fatalf("output length %d, want 100", len(out))
	}
}

func TestDeltaSigmaTheoreticalSQNR(t *testing.T) {
	d := NewDeltaSigma(64, 2)
	want := 6.02 + 1.76 - 5.17 + 30*math.Log10(64)
	if got := d.TheoreticalSQNR(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SQNR = %g, want %g", got, want)
	}
	// Each doubling of OSR is worth ~9 dB.
	d2 := NewDeltaSigma(128, 2)
	if diff := d2.TheoreticalSQNR() - d.TheoreticalSQNR(); math.Abs(diff-9.03) > 0.01 {
		t.Fatalf("per-octave gain = %g dB, want ~9", diff)
	}
}

func TestDeltaSigmaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("low OSR", func() { NewDeltaSigma(2, 2) })
	mustPanic("bad VFS", func() { NewDeltaSigma(16, 0) })
}
