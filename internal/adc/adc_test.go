package adc

import (
	"math"
	"testing"
	"testing/quick"

	"efficsense/internal/dsp"
	"efficsense/internal/siggen"
)

func TestIdealQuantiserENOB(t *testing.T) {
	const fs = 16384.0
	for _, bits := range []int{6, 8, 10} {
		q := NewIdeal(bits, 2)
		in := siggen.Sine(1<<15, 1001.3, fs, 0.999, 0)
		out := q.Convert(in)
		m := dsp.AnalyzeSine(out, fs)
		if math.Abs(m.ENOB-float64(bits)) > 0.35 {
			t.Errorf("ideal %d-bit ENOB = %g", bits, m.ENOB)
		}
	}
}

func TestSARMatchesIdealWhenPerfect(t *testing.T) {
	s := New(Config{Bits: 8, VFS: 2, Seed: 1})
	q := NewIdeal(8, 2)
	in := siggen.Ramp(1000, -0.999, 0.999)
	so := s.Convert(in)
	qo := q.Convert(in)
	for i := range so {
		if math.Abs(so[i]-qo[i]) > 1e-12 {
			t.Fatalf("perfect SAR differs from ideal quantiser at %d: %g vs %g (in %g)",
				i, so[i], qo[i], in[i])
		}
	}
}

func TestSARENOBWithNoise(t *testing.T) {
	const fs = 16384.0
	// Comparator noise of 2 LSB rms should cost ~several dB of SNDR.
	clean := New(Config{Bits: 8, VFS: 2, Seed: 2})
	lsb := clean.LSB()
	noisy := New(Config{Bits: 8, VFS: 2, ComparatorNoise: 2 * lsb, Seed: 2})
	in := siggen.Sine(1<<15, 1001.3, fs, 0.999, 0)
	mClean := dsp.AnalyzeSine(clean.Convert(in), fs)
	mNoisy := dsp.AnalyzeSine(noisy.Convert(in), fs)
	if mClean.SNDRdB-mNoisy.SNDRdB < 3 {
		t.Fatalf("comparator noise cost only %g dB", mClean.SNDRdB-mNoisy.SNDRdB)
	}
}

func TestSARMismatchDegradesSNDR(t *testing.T) {
	const fs = 16384.0
	in := siggen.Sine(1<<15, 1001.3, fs, 0.999, 0)
	clean := New(Config{Bits: 10, VFS: 2, Seed: 3})
	// 5 % unit-cap mismatch is gross but demonstrates the mechanism.
	bad := New(Config{Bits: 10, VFS: 2, UnitCap: 1e-15, MismatchCoeff: 0.05, Seed: 3})
	mc := dsp.AnalyzeSine(clean.Convert(in), fs)
	mb := dsp.AnalyzeSine(bad.Convert(in), fs)
	if mc.SNDRdB-mb.SNDRdB < 3 {
		t.Fatalf("mismatch cost only %g dB (clean %g, mismatched %g)",
			mc.SNDRdB-mb.SNDRdB, mc.SNDRdB, mb.SNDRdB)
	}
}

func TestSARCodesMonotoneIdeal(t *testing.T) {
	s := New(Config{Bits: 8, VFS: 2, Seed: 4})
	prev := -1
	for v := -1.0; v <= 1.0; v += 0.001 {
		code := s.ConvertCode(v)
		if code < prev {
			t.Fatalf("codes not monotone at %g: %d < %d", v, code, prev)
		}
		prev = code
	}
}

func TestSARCodeRangeProperty(t *testing.T) {
	s := New(Config{Bits: 6, VFS: 2, UnitCap: 1e-15, MismatchCoeff: 0.01, Seed: 5})
	f := func(raw int16) bool {
		v := float64(raw) / math.MaxInt16 * 3 // deliberately overranges
		code := s.ConvertCode(v)
		return code >= 0 && code < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSARRoundTripWithinLSB(t *testing.T) {
	s := New(Config{Bits: 8, VFS: 2, Seed: 6})
	lsb := s.LSB()
	for v := -0.99; v < 0.99; v += 0.0137 {
		got := s.CodeToVoltage(s.ConvertCode(v))
		if math.Abs(got-v) > lsb {
			t.Fatalf("reconstruction error %g > 1 LSB at %g", got-v, v)
		}
	}
}

func TestSARClipsGracefully(t *testing.T) {
	s := New(Config{Bits: 8, VFS: 2, Seed: 7})
	if got := s.ConvertCode(10); got != 255 {
		t.Fatalf("overrange code = %d, want 255", got)
	}
	if got := s.ConvertCode(-10); got != 0 {
		t.Fatalf("underrange code = %d, want 0", got)
	}
}

func TestSARINL(t *testing.T) {
	perfect := New(Config{Bits: 8, VFS: 2, Seed: 8})
	for code, v := range perfect.INL() {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("perfect SAR INL[%d] = %g", code, v)
		}
	}
	bad := New(Config{Bits: 8, VFS: 2, UnitCap: 1e-15, MismatchCoeff: 0.02, Seed: 8})
	var maxINL float64
	for _, v := range bad.INL() {
		if a := math.Abs(v); a > maxINL {
			maxINL = a
		}
	}
	if maxINL == 0 {
		t.Fatal("mismatched SAR should show nonzero INL")
	}
}

func TestSARDeterministicMismatch(t *testing.T) {
	a := New(Config{Bits: 8, VFS: 2, UnitCap: 1e-15, MismatchCoeff: 0.01, Seed: 9})
	b := New(Config{Bits: 8, VFS: 2, UnitCap: 1e-15, MismatchCoeff: 0.01, Seed: 9})
	for i := range a.weights {
		if a.weights[i] != b.weights[i] {
			t.Fatal("same seed should give identical mismatch realisation")
		}
	}
	c := New(Config{Bits: 8, VFS: 2, UnitCap: 1e-15, MismatchCoeff: 0.01, Seed: 10})
	same := true
	for i := range a.weights {
		if a.weights[i] != c.weights[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different mismatch")
	}
}

func TestSARAccessors(t *testing.T) {
	s := New(Config{Bits: 7, VFS: 2, Seed: 11})
	if s.Bits() != 7 || s.VFS() != 2 {
		t.Fatal("accessors wrong")
	}
	if got := s.LSB(); math.Abs(got-2.0/128) > 1e-15 {
		t.Fatalf("LSB = %g", got)
	}
	codes := s.ConvertCodes([]float64{-1, 0, 0.999})
	if len(codes) != 3 || codes[0] != 0 || codes[2] != 127 {
		t.Fatalf("ConvertCodes = %v", codes)
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bits", func() { New(Config{Bits: 0, VFS: 2}) })
	mustPanic("zero vfs", func() { New(Config{Bits: 8}) })
	mustPanic("ideal zero bits", func() { NewIdeal(0, 2) })
}
