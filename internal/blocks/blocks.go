// Package blocks provides the behavioural (functional) models of the
// analog building blocks in the EffiCSense library — the Go counterpart of
// the paper's Simulink block set (Step 1 of the framework). Each block
// consumes and produces discrete-time waveforms on a common simulation
// grid; blocks that change the rate (the sample & hold) are explicit about
// it. Non-idealities (noise, finite bandwidth, nonlinearity, clipping)
// follow the structure of the paper's Fig 3 LNA example.
package blocks

import (
	"math"

	"efficsense/internal/dsp"
	"efficsense/internal/xrand"
)

// Context carries the simulation environment shared by the blocks of one
// chain run: the "continuous-time" grid rate and the noise stream.
type Context struct {
	// Rate is the simulation grid rate in Hz. It must comfortably exceed
	// the ADC sample rate (the chain builders use an integer multiple).
	Rate float64
	// RNG is the root noise stream; blocks derive private substreams.
	RNG *xrand.Source
}

// NewContext returns a context at the given rate with a seeded stream.
func NewContext(rate float64, seed int64) *Context {
	return &Context{Rate: rate, RNG: xrand.New(seed)}
}

// Block is a rate-preserving waveform processor.
type Block interface {
	// Name identifies the block in power breakdowns and reports.
	Name() string
	// Process transforms the input waveform (same rate, same length).
	Process(ctx *Context, in []float64) []float64
}

// Series chains blocks sequentially.
type Series struct {
	Blocks []Block
}

// Name implements Block.
func (s *Series) Name() string { return "series" }

// Process runs the input through every block in order.
func (s *Series) Process(ctx *Context, in []float64) []float64 {
	out := in
	for _, b := range s.Blocks {
		out = b.Process(ctx, out)
	}
	return out
}

// LNA models the low-noise amplifier of Fig 3: white input-referred noise
// is added to the signal, the sum is amplified, band-limited by a one-pole
// lowpass at Bandwidth, passed through a third-order nonlinearity and
// finally hard-clipped at the supply rails.
type LNA struct {
	// Gain is the voltage gain (V/V).
	Gain float64
	// NoiseRMS is the input-referred noise integrated over Bandwidth (V).
	// This is the "LNA noise floor" swept in the paper's Fig 4 and the
	// variable of the noise-limited power term.
	NoiseRMS float64
	// Bandwidth is the -3 dB bandwidth (Hz), BW_LNA = 3·BW_in in Table III.
	Bandwidth float64
	// HD3FullScale is the third-harmonic distortion, as an amplitude
	// ratio, produced by a full-scale (ClipLevel) output sine. Zero
	// disables the nonlinearity.
	HD3FullScale float64
	// FlickerCorner is the 1/f noise corner frequency (Hz): below it the
	// input-referred noise density exceeds the thermal floor. Zero
	// disables flicker noise (the paper's Fig 3 models the thermal floor
	// only; the corner is a library extension for chopper-less designs).
	FlickerCorner float64
	// ClipLevel is the output saturation level (V), typically VDD/2 for a
	// mid-rail referenced amplifier.
	ClipLevel float64
}

// Name implements Block.
func (l *LNA) Name() string { return "LNA" }

// Process implements Block following the Fig 3 signal flow.
func (l *LNA) Process(ctx *Context, in []float64) []float64 {
	out := make([]float64, len(in))
	// Per-sample white noise sigma such that the 0..Bandwidth in-band
	// portion of the flat spectrum integrates to NoiseRMS².
	var sigma float64
	if l.NoiseRMS > 0 && l.Bandwidth > 0 && ctx.Rate > 2*l.Bandwidth {
		sigma = l.NoiseRMS * math.Sqrt(ctx.Rate/(2*l.Bandwidth))
	} else if l.NoiseRMS > 0 {
		sigma = l.NoiseRMS
	}
	rng := ctx.RNG.Derive("lna-noise")
	var flicker []float64
	if l.FlickerCorner > 0 && l.NoiseRMS > 0 && l.Bandwidth > 0 {
		// Flicker density equals the thermal density at the corner; its
		// in-band RMS follows from integrating k/f from fLow to BW with
		// k = (thermal density)·corner.
		const fLow = 0.1
		thermalDensity := l.NoiseRMS * l.NoiseRMS / l.Bandwidth
		flickerPower := thermalDensity * l.FlickerCorner * math.Log(l.Bandwidth/fLow)
		flicker = make([]float64, len(in))
		rng.Derive("flicker").OneOverF(flicker, 1)
		scale := math.Sqrt(flickerPower)
		for i := range flicker {
			flicker[i] *= scale
		}
	}
	for i, x := range in {
		n := rng.Normal(0, sigma)
		if flicker != nil {
			n += flicker[i]
		}
		out[i] = (x + n) * l.Gain
	}
	if l.Bandwidth > 0 && l.Bandwidth < ctx.Rate/2 {
		lp := dsp.NewOnePoleLP(l.Bandwidth, ctx.Rate)
		out = lp.Apply(out)
	}
	if l.HD3FullScale > 0 && l.ClipLevel > 0 {
		// y = x + c3·x³ with c3 chosen so a ClipLevel-amplitude sine shows
		// the requested HD3: HD3 ≈ c3·A²/4 → c3 = 4·HD3/A².
		c3 := -4 * l.HD3FullScale / (l.ClipLevel * l.ClipLevel)
		for i, x := range out {
			out[i] = x + c3*x*x*x
		}
	}
	if l.ClipLevel > 0 {
		for i, x := range out {
			if x > l.ClipLevel {
				out[i] = l.ClipLevel
			} else if x < -l.ClipLevel {
				out[i] = -l.ClipLevel
			}
		}
	}
	return out
}

// SampleHold models the track-and-hold: it picks every Decimation-th grid
// sample and adds kT/C sampling noise set by the hold capacitor. It
// reduces the rate by Decimation, so it is not a Block.
type SampleHold struct {
	// Decimation is the integer ratio between the grid rate and f_sample.
	Decimation int
	// Cap is the sampling capacitor (F); kT/C noise sigma = sqrt(kT/Cap).
	Cap float64
	// Temperature in kelvin for the kT/C noise (0 → 300 K).
	Temperature float64
}

// Sample returns the held samples (length ceil(len(in)/Decimation)).
func (s *SampleHold) Sample(ctx *Context, in []float64) []float64 {
	if s.Decimation <= 0 {
		panic("blocks: SampleHold.Decimation must be positive")
	}
	temp := s.Temperature
	if temp <= 0 {
		temp = 300
	}
	var sigma float64
	if s.Cap > 0 {
		sigma = math.Sqrt(1.380649e-23 * temp / s.Cap)
	}
	rng := ctx.RNG.Derive("sh-noise")
	out := make([]float64, 0, len(in)/s.Decimation+1)
	for i := 0; i < len(in); i += s.Decimation {
		out = append(out, in[i]+rng.Normal(0, sigma))
	}
	return out
}

// Attenuator is a fixed gain (or loss) block, useful for referring
// electrode-scale signals into the ADC range in idealised chains.
type Attenuator struct{ K float64 }

// Name implements Block.
func (a *Attenuator) Name() string { return "gain" }

// Process implements Block.
func (a *Attenuator) Process(_ *Context, in []float64) []float64 {
	out := make([]float64, len(in))
	for i, x := range in {
		out[i] = a.K * x
	}
	return out
}

// AdditiveNoise injects white Gaussian noise of the given RMS, a generic
// imperfection block for ablation studies.
type AdditiveNoise struct {
	RMS   float64
	Label string
}

// Name implements Block.
func (n *AdditiveNoise) Name() string {
	if n.Label != "" {
		return n.Label
	}
	return "noise"
}

// Process implements Block.
func (n *AdditiveNoise) Process(ctx *Context, in []float64) []float64 {
	rng := ctx.RNG.Derive("additive-" + n.Name())
	out := make([]float64, len(in))
	for i, x := range in {
		out[i] = x + rng.Normal(0, n.RMS)
	}
	return out
}
