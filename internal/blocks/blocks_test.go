package blocks

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/siggen"
)

func TestLNAGain(t *testing.T) {
	ctx := NewContext(8192, 1)
	lna := &LNA{Gain: 40, Bandwidth: 1000, ClipLevel: 1}
	in := siggen.Sine(8192, 50, ctx.Rate, 1e-3, 0)
	out := lna.Process(ctx, in)
	g := dsp.RMS(out[1000:]) / dsp.RMS(in[1000:])
	if math.Abs(g-40) > 1 {
		t.Fatalf("LNA gain = %g, want ~40", g)
	}
}

func TestLNANoiseIntegratesToSpec(t *testing.T) {
	// With zero input, the in-band output noise referred to input must
	// equal NoiseRMS.
	ctx := NewContext(8192, 2)
	const vn = 5e-6
	const bw = 768.0
	lna := &LNA{Gain: 100, NoiseRMS: vn, Bandwidth: bw, ClipLevel: 1}
	in := make([]float64, 1<<16)
	out := lna.Process(ctx, in)
	// Total output noise referred to input (one-pole NEB = π/2·BW means
	// total slightly exceeds the in-band value; measure only in-band).
	psd := dsp.Welch(out, ctx.Rate, 4096)
	inBand := psd.BandPower(0, bw)
	gotRMS := math.Sqrt(inBand) / 100
	if math.Abs(gotRMS-vn) > 0.15*vn {
		t.Fatalf("in-band input-referred noise = %g, want ~%g", gotRMS, vn)
	}
}

func TestLNABandwidthLimits(t *testing.T) {
	ctx := NewContext(16384, 3)
	lna := &LNA{Gain: 1, Bandwidth: 500, ClipLevel: 10}
	pass := siggen.Sine(16384, 50, ctx.Rate, 1, 0)
	stop := siggen.Sine(16384, 4000, ctx.Rate, 1, 0)
	gPass := dsp.RMS(lna.Process(ctx, pass)[2000:])
	gStop := dsp.RMS(lna.Process(ctx, stop)[2000:])
	if gPass < 0.65 {
		t.Fatalf("passband output RMS = %g", gPass)
	}
	if gStop > 0.15 {
		t.Fatalf("stopband output RMS = %g, want attenuated", gStop)
	}
}

func TestLNAHD3(t *testing.T) {
	ctx := NewContext(65536, 4)
	lna := &LNA{Gain: 1, Bandwidth: 0, HD3FullScale: 0.01, ClipLevel: 1}
	in := siggen.Sine(65536, 1001, ctx.Rate, 1, 0) // full-scale sine
	out := lna.Process(ctx, in)
	m := dsp.AnalyzeSine(out, ctx.Rate)
	// HD3 = 1% → THD ≈ -40 dB.
	if math.Abs(m.THDdB+40) > 3 {
		t.Fatalf("THD = %g dB, want ~-40", m.THDdB)
	}
}

func TestLNAClipping(t *testing.T) {
	ctx := NewContext(4096, 5)
	lna := &LNA{Gain: 10, ClipLevel: 1}
	in := siggen.Sine(4096, 10, ctx.Rate, 1, 0) // would reach ±10 unclipped
	out := lna.Process(ctx, in)
	if got := dsp.MaxAbs(out); got > 1+1e-12 {
		t.Fatalf("clip level violated: %g", got)
	}
	// Heavily clipped output is distorted.
	if m := dsp.AnalyzeSine(out, ctx.Rate); m.SNDRdB > 20 {
		t.Fatalf("clipped SNDR = %g dB, expected heavy distortion", m.SNDRdB)
	}
}

func TestLNADeterministicPerContextSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		ctx := NewContext(8192, seed)
		lna := &LNA{Gain: 10, NoiseRMS: 1e-6, Bandwidth: 700, ClipLevel: 1}
		return lna.Process(ctx, make([]float64, 100))
	}
	a, b, c := mk(1), mk(1), mk(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce noise exactly")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestSampleHoldDecimation(t *testing.T) {
	ctx := NewContext(1000, 6)
	sh := &SampleHold{Decimation: 4, Cap: 1e-12}
	in := siggen.Ramp(100, 0, 99)
	out := sh.Sample(ctx, in)
	if len(out) != 25 {
		t.Fatalf("output length %d, want 25", len(out))
	}
	// kT/C with 1 pF is ~64 µV — samples should be near the ramp values.
	for i, v := range out {
		if math.Abs(v-float64(4*i)) > 1e-3 {
			t.Fatalf("sample %d = %g, want ~%d", i, v, 4*i)
		}
	}
}

func TestSampleHoldKTCNoise(t *testing.T) {
	ctx := NewContext(1e6, 7)
	const c = 1e-15 // 1 fF → sigma ≈ 2.03 mV at 300 K
	sh := &SampleHold{Decimation: 1, Cap: c}
	out := sh.Sample(ctx, make([]float64, 200000))
	got := dsp.RMS(out)
	want := math.Sqrt(1.380649e-23 * 300 / c)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("kT/C sigma = %g, want %g", got, want)
	}
}

func TestSampleHoldNoCapNoNoise(t *testing.T) {
	ctx := NewContext(1000, 8)
	sh := &SampleHold{Decimation: 2}
	out := sh.Sample(ctx, []float64{1, 2, 3, 4})
	if out[0] != 1 || out[1] != 3 {
		t.Fatalf("ideal S&H altered samples: %v", out)
	}
}

func TestSampleHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero decimation should panic")
		}
	}()
	(&SampleHold{}).Sample(NewContext(1000, 9), []float64{1})
}

func TestSeriesComposition(t *testing.T) {
	ctx := NewContext(1000, 10)
	s := &Series{Blocks: []Block{&Attenuator{K: 2}, &Attenuator{K: 3}}}
	out := s.Process(ctx, []float64{1, -1})
	if out[0] != 6 || out[1] != -6 {
		t.Fatalf("series output %v, want [6 -6]", out)
	}
	if s.Name() != "series" {
		t.Fatal("series name")
	}
}

func TestAdditiveNoiseRMS(t *testing.T) {
	ctx := NewContext(1000, 11)
	n := &AdditiveNoise{RMS: 0.5, Label: "test"}
	out := n.Process(ctx, make([]float64, 100000))
	if got := dsp.RMS(out); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("noise RMS = %g", got)
	}
	if n.Name() != "test" {
		t.Fatal("label not used as name")
	}
	if (&AdditiveNoise{}).Name() != "noise" {
		t.Fatal("default name")
	}
}

func TestLNAFlickerNoiseLowFrequencyDominated(t *testing.T) {
	const rate = 8192.0
	mk := func(corner float64) dsp.PSD {
		ctx := NewContext(rate, 40)
		lna := &LNA{Gain: 1, NoiseRMS: 5e-6, Bandwidth: 768, FlickerCorner: corner, ClipLevel: 1}
		out := lna.Process(ctx, make([]float64, 1<<16))
		return dsp.Welch(out, rate, 8192)
	}
	white := mk(0)
	flick := mk(100)
	// With a 100 Hz corner the sub-10 Hz density should rise clearly.
	lowW := white.BandPower(0.5, 10)
	lowF := flick.BandPower(0.5, 10)
	if lowF < 2*lowW {
		t.Fatalf("flicker corner did not lift low-frequency noise: %g vs %g", lowF, lowW)
	}
	// The high end of the band stays thermal-dominated.
	hiW := white.BandPower(600, 760)
	hiF := flick.BandPower(600, 760)
	if hiF > 3*hiW {
		t.Fatalf("flicker leaked into the thermal region: %g vs %g", hiF, hiW)
	}
}
