// Package siggen generates the test waveforms the EffiCSense framework
// drives its chains with: calibrated sines and multitones for SNDR
// characterisation (paper Fig 4) and the building blocks (coloured noise,
// rhythmic discharges, bursts) the EEG synthesiser composes.
package siggen

import (
	"math"

	"efficsense/internal/xrand"
)

// Sine returns n samples of amp·sin(2π·freq·t + phase) sampled at rate.
func Sine(n int, freq, rate, amp, phase float64) []float64 {
	v := make([]float64, n)
	w := 2 * math.Pi * freq / rate
	for i := range v {
		v[i] = amp * math.Sin(w*float64(i)+phase)
	}
	return v
}

// Tone describes one component of a multitone stimulus.
type Tone struct {
	Freq  float64 // Hz
	Amp   float64 // peak amplitude
	Phase float64 // radians
}

// Multitone returns the sum of the given tones.
func Multitone(n int, rate float64, tones []Tone) []float64 {
	v := make([]float64, n)
	for _, t := range tones {
		w := 2 * math.Pi * t.Freq / rate
		for i := range v {
			v[i] += t.Amp * math.Sin(w*float64(i)+t.Phase)
		}
	}
	return v
}

// ColoredNoise returns n samples of 1/f^alpha noise scaled to the given
// RMS, drawn from rng.
func ColoredNoise(rng *xrand.Source, n int, alpha, rms float64) []float64 {
	v := make([]float64, n)
	rng.OneOverF(v, alpha)
	for i := range v {
		v[i] *= rms
	}
	return v
}

// SpikeWave returns n samples of a rhythmic spike-and-wave discharge — the
// canonical ictal (seizure) EEG pattern: a slow half-sine "wave" with a
// sharp superimposed "spike" each cycle. freq is the discharge rate (Hz,
// typically 3–5 for absence-type seizures), amp the peak amplitude.
// Cycle-to-cycle frequency jitter (fractional, e.g. 0.05) and amplitude
// modulation make records distinct.
func SpikeWave(rng *xrand.Source, n int, rate, freq, amp, jitter float64) []float64 {
	v := make([]float64, n)
	phase := rng.Float64() * 2 * math.Pi
	curFreq := freq
	for i := range v {
		t := phase / (2 * math.Pi) // position within cycle [0,1)
		// Wave component: full-cycle sinusoid.
		wave := math.Sin(phase)
		// Spike component: narrow Gaussian bump early in each cycle.
		d := t - 0.18
		spike := 1.9 * math.Exp(-d*d/(2*0.0018))
		v[i] = amp * (0.62*wave + spike*0.55)
		phase += 2 * math.Pi * curFreq / rate
		if phase >= 2*math.Pi {
			phase -= 2 * math.Pi
			// New cycle: jitter the instantaneous frequency.
			curFreq = freq * (1 + rng.Normal(0, jitter))
			if curFreq < freq*0.5 {
				curFreq = freq * 0.5
			}
		}
	}
	return v
}

// Burst multiplies v in place by a raised-cosine envelope that is zero
// outside [start, start+length) samples, shaping transient activity.
func Burst(v []float64, start, length int) []float64 {
	for i := range v {
		k := i - start
		if k < 0 || k >= length {
			v[i] = 0
			continue
		}
		env := 0.5 * (1 - math.Cos(2*math.Pi*float64(k)/float64(length)))
		v[i] *= env
	}
	return v
}

// Rhythm returns a narrow-band oscillation (e.g. the posterior alpha
// rhythm) with slowly wandering amplitude: a sine at freq Hz multiplied by
// a low-frequency random envelope.
func Rhythm(rng *xrand.Source, n int, rate, freq, rms float64) []float64 {
	v := make([]float64, n)
	env := make([]float64, n)
	rng.OneOverF(env, 2) // slow Brownian-like envelope
	phase := rng.Float64() * 2 * math.Pi
	w := 2 * math.Pi * freq / rate
	for i := range v {
		e := 1 + 0.5*env[i]
		if e < 0.1 {
			e = 0.1
		}
		v[i] = e * math.Sin(w*float64(i)+phase)
	}
	// Scale to requested RMS.
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	cur := math.Sqrt(ss / float64(n))
	if cur > 0 {
		for i := range v {
			v[i] *= rms / cur
		}
	}
	return v
}

// Ramp returns a linear ramp from lo to hi over n samples, a simple
// full-range stimulus for DAC/ADC linearity checks.
func Ramp(n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	if n == 1 {
		v[0] = lo
		return v
	}
	step := (hi - lo) / float64(n-1)
	for i := range v {
		v[i] = lo + step*float64(i)
	}
	return v
}
