package siggen

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/xrand"
)

func TestSineAmplitudeAndFrequency(t *testing.T) {
	v := Sine(4096, 100, 4096, 0.5, 0)
	if got := dsp.MaxAbs(v); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("peak = %g, want 0.5", got)
	}
	m := dsp.AnalyzeSine(v, 4096)
	if math.Abs(m.FundamentalHz-100) > 2 {
		t.Errorf("fundamental = %g, want 100", m.FundamentalHz)
	}
}

func TestMultitoneSuperposition(t *testing.T) {
	tones := []Tone{{Freq: 50, Amp: 1}, {Freq: 120, Amp: 0.5}}
	v := Multitone(2048, 2048, tones)
	a := Sine(2048, 50, 2048, 1, 0)
	b := Sine(2048, 120, 2048, 0.5, 0)
	for i := range v {
		if math.Abs(v[i]-(a[i]+b[i])) > 1e-12 {
			t.Fatalf("superposition broken at %d", i)
		}
	}
}

func TestColoredNoiseRMS(t *testing.T) {
	rng := xrand.New(1)
	v := ColoredNoise(rng, 8192, 1, 3.5e-6)
	if got := dsp.RMS(v); math.Abs(got-3.5e-6) > 1e-9 {
		t.Fatalf("RMS = %g, want 3.5e-6", got)
	}
}

func TestSpikeWaveDominantFrequency(t *testing.T) {
	rng := xrand.New(2)
	const rate = 512.0
	v := SpikeWave(rng, 8192, rate, 4, 1, 0.02)
	psd := dsp.Welch(v, rate, 1024)
	// Fundamental band (3-5 Hz) should dominate the high band.
	low := psd.BandPower(2.5, 5.5)
	high := psd.BandPower(40, 100)
	if low < 10*high {
		t.Fatalf("spike-wave not low-frequency dominated: %g vs %g", low, high)
	}
	if dsp.MaxAbs(v) == 0 {
		t.Fatal("empty spike-wave")
	}
}

func TestSpikeWaveHasHarmonics(t *testing.T) {
	// The sharp spikes must put energy at harmonics (what distinguishes a
	// spike-wave from a plain sine and feeds wide-band features).
	rng := xrand.New(3)
	const rate = 512.0
	v := SpikeWave(rng, 16384, rate, 4, 1, 0)
	psd := dsp.Welch(v, rate, 2048)
	harm := psd.BandPower(7, 30)
	if harm <= 0 {
		t.Fatal("no harmonic energy in spike-wave")
	}
	fund := psd.BandPower(3, 5)
	if harm < 0.01*fund {
		t.Fatalf("harmonics too weak: %g vs fundamental %g", harm, fund)
	}
}

func TestBurstZeroOutside(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = 1
	}
	Burst(v, 20, 40)
	for i := 0; i < 20; i++ {
		if v[i] != 0 {
			t.Fatalf("sample %d not zeroed before burst", i)
		}
	}
	for i := 60; i < 100; i++ {
		if v[i] != 0 {
			t.Fatalf("sample %d not zeroed after burst", i)
		}
	}
	if dsp.MaxAbs(v[20:60]) == 0 {
		t.Fatal("burst interior should be nonzero")
	}
}

func TestRhythmRMSAndBand(t *testing.T) {
	rng := xrand.New(4)
	const rate = 512.0
	v := Rhythm(rng, 16384, rate, 10, 2e-6)
	if got := dsp.RMS(v); math.Abs(got-2e-6) > 1e-8 {
		t.Fatalf("RMS = %g, want 2e-6", got)
	}
	psd := dsp.Welch(v, rate, 2048)
	inBand := psd.BandPower(7, 13)
	total := psd.TotalPower()
	if inBand < 0.7*total {
		t.Fatalf("alpha rhythm energy not concentrated: %g of %g", inBand, total)
	}
}

func TestRamp(t *testing.T) {
	v := Ramp(5, -1, 1)
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("Ramp[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if got := Ramp(1, 3, 9); got[0] != 3 {
		t.Fatalf("Ramp(1) = %v", got)
	}
}
