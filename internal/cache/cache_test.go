package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"efficsense/internal/core"
)

func res(power float64) core.Result {
	return core.Result{TotalPower: power}
}

func TestNewRejectsNonPositiveCapacity(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestGetPutAndPromotion(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put("a", res(1))
	if v, ok := c.Get("a"); !ok || v.TotalPower != 1 {
		t.Fatalf("Get(a) = %+v, %v", v, ok)
	}
	c.Put("a", res(2)) // refresh in place, no growth
	if v, _ := c.Get("a"); v.TotalPower != 2 {
		t.Fatalf("refresh lost: %+v", v)
	}
	if c.Len() != 1 || c.Cap() != 64 {
		t.Fatalf("len %d cap %d", c.Len(), c.Cap())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEvictionHonoursCapacity: a capacity-1 cache (one shard by
// construction) keeps only the newest key — the deterministic check
// that insertion evicts least-recently-used, independent of the hash
// seed's shard assignment.
func TestEvictionHonoursCapacity(t *testing.T) {
	c := New(1)
	c.Put("a", res(1))
	c.Put("b", res(2))
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted key still present")
	}
	if v, ok := c.Get("b"); !ok || v.TotalPower != 2 {
		t.Fatalf("newest key lost: %+v, %v", v, ok)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

// TestBoundNeverExceeded floods a small cache with distinct keys and
// checks the global occupancy never passes the bound.
func TestBoundNeverExceeded(t *testing.T) {
	const capacity = 8
	c := New(capacity)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("key-%d", i), res(float64(i)))
		if n := c.Len(); n > capacity {
			t.Fatalf("occupancy %d exceeds bound %d after %d inserts", n, capacity, i+1)
		}
	}
	st := c.Stats()
	if st.Entries > capacity || st.Capacity != capacity {
		t.Fatalf("stats %+v", st)
	}
	if st.Evictions < 500-capacity {
		t.Fatalf("evictions %d, want >= %d", st.Evictions, 500-capacity)
	}
}

// TestDoComputesOncePerKey: K concurrent Do calls on one cold key run
// the computation exactly once; the other K-1 either share the flight
// or hit the stored entry, and everyone sees the same value.
func TestDoComputesOncePerKey(t *testing.T) {
	c := New(16)
	var computed atomic.Int64
	const K = 16
	var wg sync.WaitGroup
	vals := make([]core.Result, K)
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, _, _ := c.Do("hot", func() core.Result {
				computed.Add(1)
				time.Sleep(10 * time.Millisecond)
				return res(42)
			})
			vals[k] = v
		}(k)
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for k, v := range vals {
		if v.TotalPower != 42 {
			t.Fatalf("caller %d saw %+v", k, v)
		}
	}
	st := c.Stats()
	// Every caller is exactly one of: the computer (1 miss), a flight
	// joiner, or a post-store hit.
	if st.Misses != 1 || st.Hits+st.FlightShared != K-1 {
		t.Fatalf("stats %+v, want 1 miss and %d hits+shared", st, K-1)
	}
}

// TestDoErrorResultsAreSharedNotStored: an error-carrying result
// reaches the waiters but is not pinned in the cache, so the next cold
// call retries.
func TestDoErrorResultsAreSharedNotStored(t *testing.T) {
	c := New(16)
	bad := core.Result{Err: fmt.Errorf("transient")}
	if v, hit, shared := c.Do("k", func() core.Result { return bad }); v.Err == nil || hit || shared {
		t.Fatalf("error compute: %+v hit=%v shared=%v", v, hit, shared)
	}
	if c.Len() != 0 {
		t.Fatalf("error result was stored (len %d)", c.Len())
	}
	if v, hit, _ := c.Do("k", func() core.Result { return res(7) }); v.TotalPower != 7 || hit {
		t.Fatalf("retry after error: %+v hit=%v", v, hit)
	}
	if v, hit, _ := c.Do("k", func() core.Result { t.Error("recomputed a stored key"); return res(0) }); !hit || v.TotalPower != 7 {
		t.Fatalf("stored result not served: %+v hit=%v", v, hit)
	}
}

// TestDoPanicReleasesWaiters: a panicking computation must not strand
// the goroutines that joined its flight.
func TestDoPanicReleasesWaiters(t *testing.T) {
	c := New(16)
	started := make(chan struct{})
	waited := make(chan core.Result, 1)
	go func() {
		defer func() { recover() }()
		c.Do("boom", func() core.Result {
			close(started)
			time.Sleep(20 * time.Millisecond)
			panic("evaluator exploded")
		})
	}()
	<-started
	go func() {
		v, _, _ := c.Do("boom", func() core.Result { return res(1) })
		waited <- v
	}()
	select {
	case v := <-waited:
		// Either it joined the doomed flight (error result) or it raced
		// past the cleanup and computed fresh — both are sound; blocking
		// forever is the bug.
		if v.Err == nil && v.TotalPower != 1 {
			t.Fatalf("waiter got %+v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded by a panicked flight")
	}
	if c.Len() != 0 && c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

// TestStressBoundAndCoherenceUnderRace hammers a small cache from many
// goroutines (run under -race in make verify): the bound must hold at
// every observation and every returned value must be coherent with its
// key.
func TestStressBoundAndCoherenceUnderRace(t *testing.T) {
	const (
		capacity = 16
		keys     = 100
		workers  = 8
		rounds   = 200
	)
	c := New(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w*31 + i*7) % keys
				key := fmt.Sprintf("key-%d", k)
				want := float64(k)
				switch i % 3 {
				case 0:
					if v, _, _ := c.Do(key, func() core.Result { return res(want) }); v.TotalPower != want {
						t.Errorf("Do(%s) = %v, want %v", key, v.TotalPower, want)
					}
				case 1:
					if v, ok := c.Get(key); ok && v.TotalPower != want {
						t.Errorf("Get(%s) = %v, want %v", key, v.TotalPower, want)
					}
				default:
					c.Put(key, res(want))
				}
				if n := c.Len(); n > capacity {
					t.Errorf("occupancy %d exceeds bound %d", n, capacity)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > capacity {
		t.Fatalf("final occupancy %d exceeds bound %d", st.Entries, capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("stress run over 100 keys and 16 slots never evicted")
	}
}
