package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"efficsense/internal/core"
	"efficsense/internal/fault"
)

// TestDoAccountingUnderInjectedPanics is the singleflight audit: with
// the cache/flight failpoint injecting panics, the Stats invariants must
// keep holding — every Do call is accounted for exactly once
// (hits + misses + shared == calls), every panic is visible in
// FlightPanics, no flight entry sticks around to block future callers,
// and the occupancy bound survives.
func TestDoAccountingUnderInjectedPanics(t *testing.T) {
	t.Cleanup(fault.Reset)
	const seed, rounds, workers, keys = 7, 40, 8, 5
	if err := fault.Enable(fault.PointFlight, fault.Config{
		Kind: fault.KindPanic, Probability: 0.3, Seed: seed,
	}); err != nil {
		t.Fatal(err)
	}
	c := New(4) // smaller than the key universe, so evictions fire too

	var calls, panicked atomic64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("k%d", (w+i)%keys)
				calls.add(1)
				func() {
					defer func() {
						if recover() != nil {
							panicked.add(1)
						}
					}()
					c.Do(key, func() core.Result {
						return core.Result{MeanSNRdB: 1}
					})
				}()
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.FlightPanics == 0 {
		t.Fatal("panic failpoint fired but Stats.FlightPanics is zero")
	}
	if got := panicked.load(); st.FlightPanics != got {
		t.Fatalf("FlightPanics %d, but %d Do calls actually panicked", st.FlightPanics, got)
	}
	if want := fault.Injected(fault.PointFlight); st.FlightPanics != want {
		t.Fatalf("FlightPanics %d, injected schedule says %d", st.FlightPanics, want)
	}
	// Waiters that joined a panicked flight observe errFlightPanicked and
	// count under FlightShared, so the per-call invariant is exact.
	if total := st.Hits + st.Misses + st.FlightShared; total != calls.load() {
		t.Fatalf("accounting drift: hits %d + misses %d + shared %d = %d, want %d Do calls",
			st.Hits, st.Misses, st.FlightShared, total, calls.load())
	}
	if c.Len() > c.Cap() {
		t.Fatalf("bound violated under panics: %d entries, cap %d", c.Len(), c.Cap())
	}

	// No stuck flights: with injection disarmed, every key computes again.
	fault.Reset()
	for k := 0; k < keys; k++ {
		r, _, _ := c.Do(fmt.Sprintf("k%d", k), func() core.Result {
			return core.Result{MeanSNRdB: 2}
		})
		if r.Err != nil {
			t.Fatalf("key k%d still poisoned after disarm: %v", k, r.Err)
		}
	}
}

// TestDoErrorInjectionSharedNotStored pins the failpoint's error mode to
// the cache's existing error contract: injected errors reach waiters but
// are never stored, so the next cold call recomputes.
func TestDoErrorInjectionSharedNotStored(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable(fault.PointFlight, fault.Config{
		Kind: fault.KindError, Probability: 1, MaxInjections: 1,
	}); err != nil {
		t.Fatal(err)
	}
	c := New(8)
	r, hit, shared := c.Do("k", func() core.Result { return core.Result{MeanSNRdB: 3} })
	if hit || shared || !errors.Is(r.Err, fault.ErrInjected) {
		t.Fatalf("first call: hit=%v shared=%v err=%v, want cold injected error", hit, shared, r.Err)
	}
	if c.Len() != 0 {
		t.Fatalf("injected error was stored: %d entries", c.Len())
	}
	r, _, _ = c.Do("k", func() core.Result { return core.Result{MeanSNRdB: 3} })
	if r.Err != nil || r.MeanSNRdB != 3 {
		t.Fatalf("retry after exhausted injection: %+v", r)
	}
}

// atomic64 is a tiny test counter (avoids importing sync/atomic names
// into assertions).
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
