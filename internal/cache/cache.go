// Package cache provides the serving layer's bounded evaluation store:
// a sharded LRU over design-point results with hit/miss/eviction
// accounting and singleflight de-duplication, so a long-running daemon
// holds at most a fixed number of results while N concurrent requests
// for the same cold key evaluate it exactly once.
//
// The unbounded dse.MemoryCache remains the right default for CLI
// one-shots over finite paper spaces; LRU is the bounded implementation
// the daemon needs under sustained traffic.
package cache

import (
	"container/list"
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"efficsense/internal/core"
	"efficsense/internal/fault"
)

// defaultShards bounds lock contention: capacity is split across up to
// this many independently locked LRU lists.
const defaultShards = 16

// Stats is a point-in-time reading of an LRU's accounting.
type Stats struct {
	// Entries is the current occupancy; Capacity the configured bound.
	Entries, Capacity int
	// Hits and Misses count Get/Do lookups against the store. A Do call
	// that joins an in-flight computation counts under FlightShared
	// instead of either.
	Hits, Misses int64
	// Evictions counts entries dropped to honour the bound.
	Evictions int64
	// FlightShared counts Do calls served by joining another caller's
	// in-flight computation (singleflight de-duplication).
	FlightShared int64
	// FlightPanics counts computations that panicked out of Do. Without
	// it a panicking flight is invisible in the accounting: its waiters
	// count under FlightShared yet no completed computation backs them,
	// so sustained panics would read as healthy de-duplication.
	FlightPanics int64
}

// LRU is a sharded, bounded, in-memory result cache. It implements
// dse.Cache (Get/Put) and dse.Flight (Do), is safe for concurrent use,
// and never holds more than its configured number of entries: the
// capacity is partitioned across the shards, so the global occupancy is
// bounded by construction, not by a background sweeper.
//
// The zero value is not usable; construct with New.
type LRU struct {
	seed     maphash.Seed
	shards   []*shard
	capacity int

	hits, misses, evictions, shared, flightPanics atomic.Int64
}

// entry is one cached result; list elements carry *entry values.
type entry struct {
	key string
	val core.Result
}

// call is one in-flight computation; waiters block on done and then
// read val.
type call struct {
	done chan struct{}
	val  core.Result
}

// shard is one independently locked LRU list plus the singleflight
// table for its keys (a key always maps to one shard, so per-shard
// flight tables still de-duplicate globally).
type shard struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	flight map[string]*call
}

// New builds a bounded cache holding at most entries results. The
// capacity is split across up to 16 shards (fewer when entries is
// small, so every shard can hold at least one entry). entries must be
// positive: a cache that can hold nothing is a configuration error, and
// New panics rather than silently degrading.
func New(entries int) *LRU {
	if entries <= 0 {
		panic("cache: capacity must be positive")
	}
	n := defaultShards
	if entries < n {
		n = entries
	}
	c := &LRU{
		seed:     maphash.MakeSeed(),
		shards:   make([]*shard, n),
		capacity: entries,
	}
	base, rem := entries/n, entries%n
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		c.shards[i] = &shard{
			cap:    sc,
			ll:     list.New(),
			items:  make(map[string]*list.Element),
			flight: make(map[string]*call),
		}
	}
	return c
}

func (c *LRU) shard(key string) *shard {
	return c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get implements dse.Cache: it returns the cached result for key, if
// present, promoting it to most recently used.
func (c *LRU) Get(key string) (core.Result, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return core.Result{}, false
}

// Put implements dse.Cache: it stores a result under key, evicting the
// least recently used entries of the key's shard beyond its capacity.
func (c *LRU) Put(key string, r core.Result) {
	sh := c.shard(key)
	sh.mu.Lock()
	c.putLocked(sh, key, r)
	sh.mu.Unlock()
}

// putLocked inserts or refreshes an entry; the caller holds sh.mu.
func (c *LRU) putLocked(sh *shard, key string, r core.Result) {
	if el, ok := sh.items[key]; ok {
		el.Value.(*entry).val = r
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&entry{key: key, val: r})
	for sh.ll.Len() > sh.cap {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.items, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// errFlightPanicked is what waiters observe when the computation they
// joined panicked out of Do.
var errFlightPanicked = errors.New("cache: in-flight computation panicked")

// Do implements dse.Flight: it returns the value for key, computing it
// with fn on a miss. Concurrent Do calls for one key run fn exactly
// once and share its result — hit reports the value was already cached,
// shared that fn ran in another goroutine. Error-carrying results are
// handed to every waiter but never stored, so a transient failure is
// retried by the next cold request instead of being pinned in the
// cache.
func (c *LRU) Do(key string, fn func() core.Result) (r core.Result, hit, shared bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, true, false
	}
	if cl, ok := sh.flight[key]; ok {
		sh.mu.Unlock()
		<-cl.done
		c.shared.Add(1)
		return cl.val, false, true
	}
	c.misses.Add(1)
	cl := &call{done: make(chan struct{})}
	sh.flight[key] = cl
	sh.mu.Unlock()

	// Even if fn panics (the sweep engine recovers evaluator panics
	// before they reach here, but other callers may not), the flight
	// entry must be released and the waiters woken, or they block
	// forever on a key nobody is computing.
	finished := false
	defer func() {
		if !finished {
			c.flightPanics.Add(1)
			cl.val = core.Result{Err: errFlightPanicked}
			sh.mu.Lock()
			delete(sh.flight, key)
			sh.mu.Unlock()
			close(cl.done)
		}
	}()
	// The cache/flight failpoint injects into the computing goroutine:
	// an error is shared with every waiter but never stored, a panic
	// unwinds through the release path above.
	if err := fault.Fire(fault.PointFlight); err != nil {
		cl.val = core.Result{Err: err}
	} else {
		cl.val = fn()
	}
	finished = true

	sh.mu.Lock()
	delete(sh.flight, key)
	if cl.val.Err == nil {
		c.putLocked(sh, key, cl.val)
	}
	sh.mu.Unlock()
	close(cl.done)
	return cl.val, false, false
}

// Len returns the current number of cached results across all shards.
func (c *LRU) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Cap returns the configured entry bound.
func (c *LRU) Cap() int { return c.capacity }

// Stats snapshots the cache's accounting.
func (c *LRU) Stats() Stats {
	return Stats{
		Entries:      c.Len(),
		Capacity:     c.capacity,
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		FlightShared: c.shared.Load(),
		FlightPanics: c.flightPanics.Load(),
	}
}
