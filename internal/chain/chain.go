// Package chain assembles complete sensor front-ends from the block
// library — the Go equivalent of wiring up the paper's Fig 1
// architectures in Simulink. Two systems are provided: the classical
// acquisition chain (Fig 1a: LNA → S&H → SAR ADC) and the analog
// compressive-sensing chain (Fig 1b: LNA → charge-sharing CS encoder →
// SAR ADC → sparse reconstruction). Both run on a common oversampled
// "continuous-time" grid and report their coupled power breakdown
// (Table II) and capacitor area alongside the processed waveform.
package chain

import (
	"math"

	"efficsense/internal/adc"
	"efficsense/internal/blocks"
	"efficsense/internal/cs"
	"efficsense/internal/dsp"
	"efficsense/internal/power"
	"efficsense/internal/tech"
)

// Common bundles the parameters shared by both architectures.
type Common struct {
	Tech tech.Params
	Sys  tech.System
	// Bits is the SAR resolution N.
	Bits int
	// LNANoise is the input-referred LNA noise over BW_LNA (V rms), the
	// primary swept variable.
	LNANoise float64
	// InputPeak is the expected electrode-signal peak (V); it sets the
	// LNA gain so the chain uses the ADC range. Default 250 µV.
	InputPeak float64
	// Headroom is the fraction of full scale targeted at InputPeak
	// (default 0.7, leaving crest margin before clipping).
	Headroom float64
	// SimOversample is the grid-rate multiple of f_sample (default 4).
	SimOversample int
	// ComparatorNoiseLSB is the comparator input noise in LSB (default
	// 0.25 — a converter designed to meet its resolution).
	ComparatorNoiseLSB float64
	// Seed fixes every stochastic realisation in the chain.
	Seed int64
}

func (c Common) withDefaults() Common {
	if c.InputPeak <= 0 {
		c.InputPeak = 250e-6
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.7
	}
	if c.SimOversample < 2 {
		c.SimOversample = 4
	}
	if c.ComparatorNoiseLSB < 0 {
		c.ComparatorNoiseLSB = 0
	} else if c.ComparatorNoiseLSB == 0 {
		c.ComparatorNoiseLSB = 0.25
	}
	return c
}

// GridRate returns the simulation grid rate (Hz).
func (c Common) GridRate() float64 {
	return float64(c.SimOversample) * c.Sys.FSample()
}

// Output is a processed waveform with its rate and the coupled
// power/area estimate of the producing chain.
type Output struct {
	// Samples is the digital output referred back through the chain gain,
	// i.e. in ADC volts.
	Samples []float64
	// Rate is the output sample rate (Hz).
	Rate float64
	// Gain is the chain's LNA gain; dividing Samples by it refers the
	// output back to electrode scale (what the detector is trained on).
	Gain float64
	// Power is the Table II breakdown of the configuration.
	Power power.Breakdown
	// AreaCaps is the total design capacitance in C_u,min multiples.
	AreaCaps float64
}

// Baseline is the classical chain of Fig 1a.
type Baseline struct {
	cfg       Common
	gain      float64
	sampleCap float64
	sar       *adc.SAR
	lna       *blocks.LNA
}

// NewBaseline builds the classical chain for the given configuration.
func NewBaseline(cfg Common) *Baseline {
	cfg = cfg.withDefaults()
	gain := cfg.Headroom * (cfg.Sys.VFS / 2) / cfg.InputPeak
	sampleCap := power.MinSampleCap(cfg.Tech, cfg.Sys, cfg.Bits)
	lsb := cfg.Sys.VFS / math.Pow(2, float64(cfg.Bits))
	sar := adc.New(adc.Config{
		Bits:            cfg.Bits,
		VFS:             cfg.Sys.VFS,
		UnitCap:         cfg.Tech.CUnitMin,
		MismatchCoeff:   cfg.Tech.MismatchSigma(cfg.Tech.CUnitMin),
		ComparatorNoise: cfg.ComparatorNoiseLSB * lsb,
		Seed:            cfg.Seed,
	})
	lna := &blocks.LNA{
		Gain:         gain,
		NoiseRMS:     cfg.LNANoise,
		Bandwidth:    cfg.Sys.LNABandwidth(),
		HD3FullScale: 0.001,
		ClipLevel:    cfg.Sys.VFS / 2,
	}
	return &Baseline{cfg: cfg, gain: gain, sampleCap: sampleCap, sar: sar, lna: lna}
}

// Gain returns the LNA gain chosen for this chain.
func (b *Baseline) Gain() float64 { return b.gain }

// Run processes an electrode-scale waveform sampled at inputRate and
// returns the digitised output at f_sample.
func (b *Baseline) Run(input []float64, inputRate float64) Output {
	return b.RunGrid(dsp.Resample(input, inputRate, b.cfg.GridRate()))
}

// RunGrid is Run for an input already on the simulation grid (GridRate),
// the fast path for sweeps that evaluate many design points on the same
// records.
func (b *Baseline) RunGrid(grid []float64) Output {
	cfg := b.cfg
	ctx := blocks.NewContext(cfg.GridRate(), cfg.Seed)
	amplified := b.lna.Process(ctx, grid)
	sh := &blocks.SampleHold{
		Decimation:  cfg.SimOversample,
		Cap:         b.sampleCap,
		Temperature: cfg.Tech.Temperature,
	}
	held := sh.Sample(ctx, amplified)
	digital := b.sar.Convert(held)
	return Output{
		Samples:  digital,
		Rate:     cfg.Sys.FSample(),
		Gain:     b.gain,
		Power:    b.PowerBreakdown(dsp.RMS(digital), dsp.Mean(digital)),
		AreaCaps: b.Area(),
	}
}

// PowerBreakdown evaluates the Table II models for this configuration.
// vinRMS/vinMean describe the converted signal (for the DAC model); pass
// measured values from a run, or estimates for static analysis.
func (b *Baseline) PowerBreakdown(vinRMS, vinMean float64) power.Breakdown {
	cfg := b.cfg
	fclk, fs := cfg.Sys.FClk(cfg.Bits), cfg.Sys.FSample()
	lnaP := power.LNAParams{
		GBW:       b.gain * cfg.Sys.LNABandwidth(),
		CLoad:     b.sampleCap,
		NoiseRMS:  cfg.LNANoise,
		Bandwidth: cfg.Sys.LNABandwidth(),
		FClk:      fclk,
	}
	return power.Breakdown{
		power.CompLNA:         power.LNA(cfg.Tech, cfg.Sys, lnaP),
		power.CompSampleHold:  power.SampleHold(cfg.Tech, cfg.Sys, cfg.Bits, fclk),
		power.CompComparator:  power.Comparator(cfg.Tech, cfg.Sys, cfg.Bits, fclk, fs, 0),
		power.CompSARLogic:    power.SARLogic(cfg.Tech, cfg.Sys, cfg.Bits, fclk, fs),
		power.CompDAC:         power.DAC(cfg.Sys, cfg.Bits, fclk, cfg.Tech.CUnitMin, vinRMS, vinMean),
		power.CompTransmitter: power.Transmitter(cfg.Tech, cfg.Bits, fclk),
		power.CompLeakage:     power.Leakage(cfg.Tech, cfg.Sys, 2<<cfg.Bits),
	}
}

// Area returns the design capacitance in C_u,min multiples.
func (b *Baseline) Area() float64 {
	return power.CapCount(b.cfg.Tech,
		power.ADCCapacitance(b.cfg.Bits, b.cfg.Tech.CUnitMin, b.sampleCap))
}

// CSConfig extends Common with the compressive-sensing knobs.
type CSConfig struct {
	Common
	// M is the measurement count per frame (Table III: 75/150/192).
	M int
	// NPhi is the frame length N_Φ (Table III: 384).
	NPhi int
	// Sparsity is the s of the s-SRBM (the paper's encoder: 2).
	Sparsity int
	// CHold is the hold capacitor (F); it is also the LNA load. Default
	// 80 fF.
	CHold float64
	// CRatio is CHold/CSample (default 16); it sets the Eq (1) sharing
	// weights.
	CRatio float64
	// MaxAtoms bounds the OMP support per frame (default M/4).
	MaxAtoms int
	// ReconMethod selects the reconstruction algorithm (OMP default; IHT
	// and ridge available — the "choice of reconstruction" degree of
	// freedom the paper lists in Section I).
	ReconMethod cs.Method
	// ModelLeakage enables hold-capacitor droop at the technology leakage
	// current in the behavioural model. The paper carries I_leak only in
	// the power/technology table, not in the functional model — at 1 pA on
	// femtofarad holds over a 0.7 s frame droop would dominate, which is a
	// finding the ablation benches expose — so droop defaults to off.
	ModelLeakage bool
}

func (c CSConfig) withDefaults() CSConfig {
	c.Common = c.Common.withDefaults()
	if c.NPhi <= 0 {
		c.NPhi = 384
	}
	if c.Sparsity <= 0 {
		c.Sparsity = 2
	}
	if c.CHold <= 0 {
		c.CHold = 80e-15
	}
	if c.CRatio <= 1 {
		c.CRatio = 16
	}
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = c.M / 4
		if c.MaxAtoms < 4 {
			c.MaxAtoms = 4
		}
	}
	return c
}

// reconstructor abstracts the per-frame recovery backends (the default
// Batch-OMP Reconstructor and the method-selectable MethodReconstructor).
type reconstructor interface {
	Reconstruct(y []float64) []float64
}

// CSChain is the compressive-sensing chain of Fig 1b.
type CSChain struct {
	cfg     CSConfig
	gain    float64
	vfsCS   float64 // scaled measurement-converter reference
	csample float64
	enc     *cs.Encoder
	rec     reconstructor
	sar     *adc.SAR
	lna     *blocks.LNA
}

// NewCS builds the compressive-sensing chain. It panics if M is not set.
func NewCS(cfg CSConfig) *CSChain {
	cfg = cfg.withDefaults()
	if cfg.M <= 0 || cfg.M > cfg.NPhi {
		panic("chain: CS requires 0 < M <= NPhi")
	}
	csample := cfg.CHold / cfg.CRatio
	leak := 0.0
	if cfg.ModelLeakage {
		leak = cfg.Tech.ILeak
	}
	// The design-point-independent planning products — sensing matrix,
	// nominal effective matrix, reconstruction dictionary and its Gram
	// factorisation — are shared through a geometry-keyed cache, so a sweep
	// pays for them once per geometry rather than once per point.
	plan := planForCS(cfg, csample)
	phi := plan.phi
	enc := cs.NewEncoder(cs.EncoderConfig{
		Phi:                 phi,
		CSample:             csample,
		CHold:               cfg.CHold,
		MismatchSigmaSample: cfg.Tech.MismatchSigma(csample),
		MismatchSigmaHold:   cfg.Tech.MismatchSigma(cfg.CHold),
		Temperature:         cfg.Tech.Temperature,
		LeakageCurrent:      leak,
		SamplePeriod:        1 / cfg.Sys.FSample(),
		Seed:                cfg.Seed,
	})
	// The charge-sharing network attenuates: a row receiving k shares
	// passes a DC input with weight 1-b^k (Eq 1 summed). The LNA cannot
	// make that up without clipping, so — as in passive CS SAR designs —
	// the measurement converter's reference is scaled down instead. The
	// busiest row bounds the worst-case measurement swing.
	alpha := csample / (csample + cfg.CHold)
	bFac := 1 - alpha
	dcGain := 1 - math.Pow(bFac, float64(plan.maxCount))
	if dcGain < 1e-6 {
		dcGain = 1e-6
	}
	gain := cfg.Headroom * (cfg.Sys.VFS / 2) / cfg.InputPeak
	vfsCS := cfg.Sys.VFS * dcGain
	lsb := vfsCS / math.Pow(2, float64(cfg.Bits))
	sar := adc.New(adc.Config{
		Bits:            cfg.Bits,
		VFS:             vfsCS,
		UnitCap:         cfg.Tech.CUnitMin,
		MismatchCoeff:   cfg.Tech.MismatchSigma(cfg.Tech.CUnitMin),
		ComparatorNoise: cfg.ComparatorNoiseLSB * lsb,
		Seed:            cfg.Seed,
	})
	lna := &blocks.LNA{
		Gain:         gain,
		NoiseRMS:     cfg.LNANoise,
		Bandwidth:    cfg.Sys.LNABandwidth(),
		HD3FullScale: 0.001,
		ClipLevel:    cfg.Sys.VFS / 2,
	}
	return &CSChain{
		cfg: cfg, gain: gain, vfsCS: vfsCS, csample: csample,
		enc: enc, rec: plan.rec, sar: sar, lna: lna,
	}
}

// Gain returns the LNA gain.
func (c *CSChain) Gain() float64 { return c.gain }

// CompressionRatio returns N_Φ/M.
func (c *CSChain) CompressionRatio() float64 {
	return float64(c.cfg.NPhi) / float64(c.cfg.M)
}

// MeasurementRate returns the CS-side ADC sample rate (Hz).
func (c *CSChain) MeasurementRate() float64 {
	return c.cfg.Sys.FSample() * float64(c.cfg.M) / float64(c.cfg.NPhi)
}

// Run processes an electrode-scale waveform and returns the reconstructed
// output at f_sample (whole frames only; a trailing partial frame is
// dropped).
func (c *CSChain) Run(input []float64, inputRate float64) Output {
	return c.RunGrid(dsp.Resample(input, inputRate, c.cfg.GridRate()))
}

// RunGrid is Run for an input already on the simulation grid.
func (c *CSChain) RunGrid(grid []float64) Output {
	cfg := c.cfg
	ctx := blocks.NewContext(cfg.GridRate(), cfg.Seed)
	amplified := c.lna.Process(ctx, grid)
	// The encoder's sampling capacitors take the samples directly; its
	// own kT/C model injects the sampling noise, so the decimation here
	// is ideal.
	sampled := dsp.Decimate(amplified, cfg.SimOversample)
	y := c.enc.Encode(sampled)
	yq := c.sar.Convert(y)
	recon := c.rec.Reconstruct(yq)
	return Output{
		Samples:  recon,
		Rate:     cfg.Sys.FSample(),
		Gain:     c.gain,
		Power:    c.PowerBreakdown(dsp.RMS(yq), dsp.Mean(yq)),
		AreaCaps: c.Area(),
	}
}

// PowerBreakdown evaluates the Table II models for the CS configuration.
// The ADC runs at the measurement rate f_sample·M/N_Φ; the CS encoder
// logic runs at the input-side clock.
func (c *CSChain) PowerBreakdown(vinRMS, vinMean float64) power.Breakdown {
	cfg := c.cfg
	fsCS := c.MeasurementRate()
	fclkCS := float64(cfg.Bits+1) * fsCS
	fclkIn := cfg.Sys.FClk(cfg.Bits)
	lnaP := power.LNAParams{
		GBW:       c.gain * cfg.Sys.LNABandwidth(),
		CLoad:     cfg.CHold, // the encoder is the LNA's load (paper §III)
		NoiseRMS:  cfg.LNANoise,
		Bandwidth: cfg.Sys.LNABandwidth(),
		FClk:      cfg.Sys.FSample(),
	}
	switches := 4*(cfg.M+cfg.Sparsity) + (2 << cfg.Bits)
	return power.Breakdown{
		power.CompLNA:         power.LNA(cfg.Tech, cfg.Sys, lnaP),
		power.CompComparator:  power.Comparator(cfg.Tech, cfg.Sys, cfg.Bits, fclkCS, fsCS, 0),
		power.CompSARLogic:    power.SARLogic(cfg.Tech, cfg.Sys, cfg.Bits, fclkCS, fsCS),
		power.CompDAC:         power.DAC(cfg.Sys, cfg.Bits, fclkCS, cfg.Tech.CUnitMin, vinRMS, vinMean),
		power.CompTransmitter: power.Transmitter(cfg.Tech, cfg.Bits, fclkCS),
		power.CompCSEncoder:   power.CSEncoderLogic(cfg.Tech, cfg.Sys, cfg.NPhi, fclkIn),
		power.CompLeakage:     power.Leakage(cfg.Tech, cfg.Sys, switches),
	}
}

// Area returns the design capacitance in C_u,min multiples: the encoder
// array plus the ADC.
func (c *CSChain) Area() float64 {
	cfg := c.cfg
	total := power.CSEncoderCapacitance(cfg.Sparsity, cfg.M, c.csample, cfg.CHold) +
		power.ADCCapacitance(cfg.Bits, cfg.Tech.CUnitMin, 0)
	return power.CapCount(cfg.Tech, total)
}

// Reference returns the band-limited ideal acquisition of the input at
// f_sample: the same one-pole bandwidth limit as the LNA but no noise,
// distortion or quantisation, at unity gain. Both architectures are
// scored against this waveform (SNR goal function, Fig 7a).
func Reference(cfg Common, input []float64, inputRate float64) []float64 {
	cfg = cfg.withDefaults()
	return ReferenceGrid(cfg, dsp.Resample(input, inputRate, cfg.GridRate()))
}

// ReferenceGrid is Reference for an input already on the simulation grid.
func ReferenceGrid(cfg Common, grid []float64) []float64 {
	cfg = cfg.withDefaults()
	lp := dsp.NewOnePoleLP(cfg.Sys.LNABandwidth(), cfg.GridRate())
	return dsp.Decimate(lp.Apply(grid), cfg.SimOversample)
}
