package chain

import (
	"math"
	"sync"

	"efficsense/internal/blocks"
	"efficsense/internal/cs"
	"efficsense/internal/dsp"
	"efficsense/internal/xrand"
)

// EvalSession is the reusable per-worker state of the batch evaluation
// path: the replayed noise banks plus every intermediate waveform buffer
// a chain run needs. One session serves any number of chain runs built
// from the same seed; buffers grow to the largest record seen and are
// then reused, so the steady state allocates nothing.
//
// Bit-identity with the classic RunGrid path rests on two facts. First,
// every chain run starts a fresh noise context from the same seed, so the
// derived "lna-noise" and "sh-noise" streams are the same sequence for
// every record and every design point — the session materialises each
// sequence once as a bank of unit normals and replays it as sigma·u[i]
// (exactly how xrand.Source.Normal scales its draws). Second, the
// stateful streams (encoder kT/C, SAR comparator) live in the per-point
// block instances, which consume them through the same ...Into methods in
// the same record order as the classic path.
//
// A session is not safe for concurrent use; pool one per worker.
type EvalSession struct {
	seed   int64
	lnaSrc *xrand.Source // positioned after len(lnaUnit) draws
	shSrc  *xrand.Source
	lnaU   []float64 // unit-normal bank of the "lna-noise" stream
	shU    []float64 // unit-normal bank of the "sh-noise" stream

	amp []float64 // amplified waveform (grid rate)
	dec []float64 // decimated waveform (f_sample)
	y   []float64 // encoder measurements
	yq  []float64 // quantised measurements
	rs  cs.ReconScratch
}

// NewEvalSession returns a session for chains built with the given seed.
func NewEvalSession(seed int64) *EvalSession {
	// Derivation order mirrors one chain run: blocks.NewContext seeds the
	// root, the LNA derives "lna-noise" first (advancing the root by one
	// draw) and the sample & hold derives "sh-noise" second.
	root := xrand.New(seed)
	return &EvalSession{
		seed:   seed,
		lnaSrc: root.Derive("lna-noise"),
		shSrc:  root.Derive("sh-noise"),
	}
}

// Seed returns the seed the session's noise banks replay.
func (s *EvalSession) Seed() int64 { return s.seed }

// lnaUnits returns the first n draws of the "lna-noise" unit bank,
// extending it lazily from the retained source.
func (s *EvalSession) lnaUnits(n int) []float64 {
	for len(s.lnaU) < n {
		grown := append(s.lnaU, make([]float64, n-len(s.lnaU))...)
		s.lnaSrc.FillUnitNormal(grown[len(s.lnaU):])
		s.lnaU = grown
	}
	return s.lnaU[:n]
}

func (s *EvalSession) shUnits(n int) []float64 {
	for len(s.shU) < n {
		grown := append(s.shU, make([]float64, n-len(s.shU))...)
		s.shSrc.FillUnitNormal(grown[len(s.shU):])
		s.shU = grown
	}
	return s.shU[:n]
}

// growFloats returns v resized to n, reallocating only on growth.
func growFloats(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// lnaProcess replays blocks.LNA.Process against the session's noise bank,
// writing into the session's amplifier buffer. The arithmetic — noise
// sigma, per-sample sum, one-pole lowpass, cubic HD3 and clipping — is
// the same expression sequence as Process, so the output is bit-identical
// to a fresh-context run at the session seed.
func (s *EvalSession) lnaProcess(l *blocks.LNA, rate float64, in []float64) []float64 {
	if l.FlickerCorner > 0 {
		// The flicker path consumes the noise stream differently; take the
		// classic path with a fresh context (identical by construction).
		return l.Process(blocks.NewContext(rate, s.seed), in)
	}
	out := growFloats(s.amp, len(in))
	s.amp = out
	var sigma float64
	if l.NoiseRMS > 0 && l.Bandwidth > 0 && rate > 2*l.Bandwidth {
		sigma = l.NoiseRMS * math.Sqrt(rate/(2*l.Bandwidth))
	} else if l.NoiseRMS > 0 {
		sigma = l.NoiseRMS
	}
	g := l.Gain
	if sigma > 0 {
		u := s.lnaUnits(len(in))
		for i, x := range in {
			n := 0 + sigma*u[i]
			out[i] = (x + n) * g
		}
	} else {
		for i, x := range in {
			out[i] = (x + 0) * g
		}
	}
	if l.Bandwidth > 0 && l.Bandwidth < rate/2 {
		lp := dsp.NewOnePoleLP(l.Bandwidth, rate)
		lp.ApplyInPlace(out)
	}
	if l.HD3FullScale > 0 && l.ClipLevel > 0 {
		c3 := -4 * l.HD3FullScale / (l.ClipLevel * l.ClipLevel)
		for i, x := range out {
			out[i] = x + c3*x*x*x
		}
	}
	if l.ClipLevel > 0 {
		for i, x := range out {
			if x > l.ClipLevel {
				out[i] = l.ClipLevel
			} else if x < -l.ClipLevel {
				out[i] = -l.ClipLevel
			}
		}
	}
	return out
}

// AmplifySession runs the baseline LNA over one grid record. The returned
// slice is session scratch, valid until the next Amplify/Encode call — it
// is shared across every design point of a batch group whose LNA settings
// coincide (gain and noise floor do not depend on the ADC resolution).
func (b *Baseline) AmplifySession(s *EvalSession, grid []float64) []float64 {
	return s.lnaProcess(b.lna, b.cfg.GridRate(), grid)
}

// DigitizeSession finishes a baseline run from an amplified waveform:
// sample & hold with the session's replayed kT/C noise bank, then SAR
// conversion through this chain's stateful converter. dst receives the
// digital output (grown as needed, fully overwritten) and is returned
// inside the Output, so the caller owns the waveform storage.
func (b *Baseline) DigitizeSession(s *EvalSession, amplified, dst []float64) Output {
	cfg := b.cfg
	temp := cfg.Tech.Temperature
	if temp <= 0 {
		temp = 300
	}
	var sigma float64
	if b.sampleCap > 0 {
		sigma = math.Sqrt(1.380649e-23 * temp / b.sampleCap)
	}
	d := cfg.SimOversample
	n := (len(amplified) + d - 1) / d
	dst = growFloats(dst, n)
	if sigma > 0 {
		u := s.shUnits(n)
		j := 0
		for i := 0; i < len(amplified); i += d {
			dst[j] = amplified[i] + 0 + sigma*u[j]
			j++
		}
	} else {
		j := 0
		for i := 0; i < len(amplified); i += d {
			dst[j] = amplified[i] + 0
			j++
		}
	}
	dst = b.sar.ConvertInto(dst, dst)
	return Output{
		Samples:  dst,
		Rate:     cfg.Sys.FSample(),
		Gain:     b.gain,
		Power:    b.PowerBreakdown(dsp.RMS(dst), dsp.Mean(dst)),
		AreaCaps: b.Area(),
	}
}

// RunGridSession is RunGrid through the session path: identical results,
// no per-run allocation beyond dst growth.
func (b *Baseline) RunGridSession(s *EvalSession, grid, dst []float64) Output {
	return b.DigitizeSession(s, b.AmplifySession(s, grid), dst)
}

// reconstructorInto is the optional allocation-free recovery fast path
// (implemented by the Batch-OMP Reconstructor).
type reconstructorInto interface {
	ReconstructInto(dst, y []float64, sc *cs.ReconScratch) []float64
}

// EncodeSession runs the CS front half — LNA, ideal decimation, the
// charge-sharing encoder — over one grid record. The returned measurement
// vector is session scratch, valid until the next Amplify/Encode call.
// Because the encoder realisation depends only on (geometry, seed), the
// measurements are shared across every design point of a group that
// differs only in ADC resolution.
func (c *CSChain) EncodeSession(s *EvalSession, grid []float64) []float64 {
	amplified := s.lnaProcess(c.lna, c.cfg.GridRate(), grid)
	d := c.cfg.SimOversample
	n := (len(amplified) + d - 1) / d
	s.dec = growFloats(s.dec, n)
	j := 0
	for i := 0; i < len(amplified); i += d {
		s.dec[j] = amplified[i]
		j++
	}
	s.y = c.enc.EncodeInto(s.y, s.dec)
	return s.y
}

// FinishSession completes a CS run from a measurement vector: SAR
// conversion through this chain's stateful converter, then sparse
// reconstruction. dst receives the reconstructed waveform (grown as
// needed, fully overwritten) and is returned inside the Output.
func (c *CSChain) FinishSession(s *EvalSession, y, dst []float64) Output {
	cfg := c.cfg
	s.yq = c.sar.ConvertInto(s.yq, y)
	yq := s.yq
	var recon []float64
	if ri, ok := c.rec.(reconstructorInto); ok {
		recon = ri.ReconstructInto(dst, yq, &s.rs)
	} else {
		recon = c.rec.Reconstruct(yq)
	}
	return Output{
		Samples:  recon,
		Rate:     cfg.Sys.FSample(),
		Gain:     c.gain,
		Power:    c.PowerBreakdown(dsp.RMS(yq), dsp.Mean(yq)),
		AreaCaps: c.Area(),
	}
}

// RunGridSession is RunGrid through the session path: identical results,
// no per-run allocation beyond dst growth.
func (c *CSChain) RunGridSession(s *EvalSession, grid, dst []float64) Output {
	return c.FinishSession(s, c.EncodeSession(s, grid), dst)
}

// csPlanKey identifies everything the expensive, design-point-independent
// part of a CS chain depends on: the sensing-matrix geometry and seed,
// the nominal sharing factor (which fixes the effective matrix and hence
// the OMP dictionary and Gram matrix) and the solver settings.
type csPlanKey struct {
	m, nphi, sparsity int
	seed              int64
	alphaBits         uint64
	maxAtoms          int
	method            cs.Method
}

// csPlan is the shared, read-only planning product: the sensing matrix,
// the busiest-row count (which sets the measurement-range scaling) and
// the reconstructor with its precomputed dictionary/Gram/Cholesky state.
// All of it is safe for concurrent use — the reconstructors take
// per-caller scratch.
type csPlan struct {
	phi      *cs.SRBM
	rec      reconstructor
	maxCount int
}

const csPlanCap = 32

var (
	csPlanMu    sync.Mutex
	csPlans     = map[csPlanKey]*csPlan{}
	csPlanOrder []csPlanKey
)

// planForCS returns the shared plan for a CS geometry, building it on
// first use. The cache is bounded (FIFO eviction): a long-lived daemon
// sweeping many geometries keeps at most csPlanCap dictionaries alive;
// evicted plans stay valid for chains already holding them.
func planForCS(cfg CSConfig, csample float64) *csPlan {
	alpha := csample / (csample + cfg.CHold)
	key := csPlanKey{
		m: cfg.M, nphi: cfg.NPhi, sparsity: cfg.Sparsity,
		seed: cfg.Seed, alphaBits: math.Float64bits(alpha),
		maxAtoms: cfg.MaxAtoms, method: cfg.ReconMethod,
	}
	csPlanMu.Lock()
	if p, ok := csPlans[key]; ok {
		csPlanMu.Unlock()
		return p
	}
	csPlanMu.Unlock()
	// Build outside the lock: plan construction is the expensive part and
	// concurrent duplicate builds of the same key are harmless (both
	// produce identical read-only plans; one wins the map slot).
	phi := cs.GenerateSRBM(cfg.M, cfg.NPhi, cfg.Sparsity, cfg.Seed)
	maxCount := 0
	for _, k := range phi.RowCounts() {
		if k > maxCount {
			maxCount = k
		}
	}
	a := cs.NominalEffectiveMatrix(phi, csample, cfg.CHold)
	var rec reconstructor
	if cfg.ReconMethod == cs.MethodOMP {
		rec = cs.NewMatrixReconstructor(a, cfg.NPhi, cfg.MaxAtoms, 1e-4)
	} else {
		rec = cs.NewMethodReconstructor(a, cfg.NPhi, cs.ReconOptions{
			Method:   cfg.ReconMethod,
			MaxAtoms: cfg.MaxAtoms,
			Tol:      1e-4,
		})
	}
	p := &csPlan{phi: phi, rec: rec, maxCount: maxCount}
	csPlanMu.Lock()
	if prior, ok := csPlans[key]; ok {
		csPlanMu.Unlock()
		return prior
	}
	csPlans[key] = p
	csPlanOrder = append(csPlanOrder, key)
	if len(csPlanOrder) > csPlanCap {
		delete(csPlans, csPlanOrder[0])
		csPlanOrder = csPlanOrder[1:]
	}
	csPlanMu.Unlock()
	return p
}
