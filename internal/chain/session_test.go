package chain

import (
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/xrand"
)

// gridFor resamples the multitone test input onto the simulation grid.
func gridFor(cfg Common, n int) []float64 {
	return dsp.Resample(testInput(n), 512, cfg.GridRate())
}

// TestBaselineSessionBitIdentical pins the session fast path to the
// classic per-run path bit for bit, across consecutive records (the SAR
// comparator stream is stateful, so record order matters).
func TestBaselineSessionBitIdentical(t *testing.T) {
	cfg := testCommon(7, 4e-6, 11)
	grid := gridFor(cfg, 4096)
	records := [][]float64{grid[:len(grid)/2], grid[len(grid)/2:]}

	classic := NewBaseline(cfg)
	fast := NewBaseline(cfg)
	sess := NewEvalSession(cfg.Seed)
	var dst []float64
	for ri, rec := range records {
		want := classic.RunGrid(rec)
		got := fast.RunGridSession(sess, rec, dst)
		dst = got.Samples
		if len(got.Samples) != len(want.Samples) {
			t.Fatalf("record %d: length %d != %d", ri, len(got.Samples), len(want.Samples))
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("record %d sample %d: %v != %v", ri, i, got.Samples[i], want.Samples[i])
			}
		}
		if got.Power.Total() != want.Power.Total() || got.AreaCaps != want.AreaCaps {
			t.Fatalf("record %d: power/area mismatch", ri)
		}
	}
}

// TestCSSessionBitIdentical does the same for the CS chain, including the
// grouped form: measurements encoded once by a "lead" chain and finished
// through another design point's converter must match that point's own
// classic run exactly (the encoder realisation is resolution-independent).
func TestCSSessionBitIdentical(t *testing.T) {
	mk := func(bits int) *CSChain {
		return NewCS(CSConfig{Common: testCommon(bits, 3e-6, 12), M: 96, NPhi: 256})
	}
	cfg := testCommon(7, 3e-6, 12)
	grid := gridFor(cfg, 6144)
	records := [][]float64{grid[:len(grid)/2], grid[len(grid)/2:]}

	// Whole-run session path, bits = 7.
	classic, fast := mk(7), mk(7)
	sess := NewEvalSession(cfg.Seed)
	var dst []float64
	for ri, rec := range records {
		want := classic.RunGrid(rec)
		got := fast.RunGridSession(sess, rec, dst)
		dst = got.Samples
		if len(got.Samples) != len(want.Samples) {
			t.Fatalf("record %d: length %d != %d", ri, len(got.Samples), len(want.Samples))
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("record %d sample %d: %v != %v", ri, i, got.Samples[i], want.Samples[i])
			}
		}
		if got.Power.Total() != want.Power.Total() {
			t.Fatalf("record %d: power mismatch", ri)
		}
	}

	// Grouped path: lead encodes, a bits=6 member finishes.
	classic6, lead, member6 := mk(6), mk(7), mk(6)
	sess2 := NewEvalSession(cfg.Seed)
	var dst2 []float64
	for ri, rec := range records {
		want := classic6.RunGrid(rec)
		y := lead.EncodeSession(sess2, rec)
		got := member6.FinishSession(sess2, y, dst2)
		dst2 = got.Samples
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("grouped record %d sample %d: %v != %v", ri, i, got.Samples[i], want.Samples[i])
			}
		}
		if got.Power.Total() != want.Power.Total() {
			t.Fatalf("grouped record %d: power mismatch", ri)
		}
	}
}

// TestSessionNoiseBankMatchesDerivedStream pins the replay identity the
// session relies on: sigma·u over the banked unit draws equals the
// Normal(0, sigma) sequence of a freshly derived stream.
func TestSessionNoiseBankMatchesDerivedStream(t *testing.T) {
	sess := NewEvalSession(99)
	u := sess.lnaUnits(64)
	ref := xrand.New(99).Derive("lna-noise")
	for i, ui := range u {
		if got, want := 3.5e-6*ui, ref.Normal(0, 3.5e-6); got != want {
			t.Fatalf("draw %d: %v != %v", i, got, want)
		}
	}
}
