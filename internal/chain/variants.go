package chain

import (
	"math"

	"efficsense/internal/adc"
	"efficsense/internal/blocks"
	"efficsense/internal/cs"
	"efficsense/internal/dsp"
	"efficsense/internal/power"
)

// This file wires the two alternative compressive-sensing front-ends the
// paper's Section III invites designers to compare against the passive
// charge-sharing chain: a fully digital CS system (Fig 1a chain plus a MAC
// compressor after the ADC, refs [2]/[12]) and an active analog CS system
// (OTA integrators instead of passive sharing, ref [10]'s counterpoint).

// DigitalCS is the digital compressive-sensing chain: LNA → S&H → SAR at
// the full Nyquist rate → digital y = Φ·x → reduced-rate transmitter. It
// saves transmission energy like the analog CS chain but pays the full
// ADC/S&H power and a MAC unit — the trade the paper's Table I literature
// ([2], [12]) analyses.
type DigitalCS struct {
	cfg       CSConfig
	gain      float64
	sampleCap float64
	phi       *cs.SRBM
	sar       *adc.SAR
	lna       *blocks.LNA
	rec       *cs.Reconstructor
	accBits   int
}

// NewDigitalCS builds the digital CS chain. It panics if M is not set.
func NewDigitalCS(cfg CSConfig) *DigitalCS {
	cfg = cfg.withDefaults()
	if cfg.M <= 0 || cfg.M > cfg.NPhi {
		panic("chain: digital CS requires 0 < M <= NPhi")
	}
	gain := cfg.Headroom * (cfg.Sys.VFS / 2) / cfg.InputPeak
	sampleCap := power.MinSampleCap(cfg.Tech, cfg.Sys, cfg.Bits)
	lsb := cfg.Sys.VFS / math.Pow(2, float64(cfg.Bits))
	phi := cs.GenerateSRBM(cfg.M, cfg.NPhi, cfg.Sparsity, cfg.Seed)
	maxCount := 0
	for _, k := range phi.RowCounts() {
		if k > maxCount {
			maxCount = k
		}
	}
	d := &DigitalCS{
		cfg:       cfg,
		gain:      gain,
		sampleCap: sampleCap,
		phi:       phi,
		accBits:   power.AccumulatorBits(cfg.Bits, maxCount),
		sar: adc.New(adc.Config{
			Bits:            cfg.Bits,
			VFS:             cfg.Sys.VFS,
			UnitCap:         cfg.Tech.CUnitMin,
			MismatchCoeff:   cfg.Tech.MismatchSigma(cfg.Tech.CUnitMin),
			ComparatorNoise: cfg.ComparatorNoiseLSB * lsb,
			Seed:            cfg.Seed,
		}),
		lna: &blocks.LNA{
			Gain:         gain,
			NoiseRMS:     cfg.LNANoise,
			Bandwidth:    cfg.Sys.LNABandwidth(),
			HD3FullScale: 0.001,
			ClipLevel:    cfg.Sys.VFS / 2,
		},
	}
	d.rec = cs.NewMatrixReconstructor(phi.Dense(), cfg.NPhi, cfg.MaxAtoms, 1e-4)
	return d
}

// Gain returns the LNA gain.
func (d *DigitalCS) Gain() float64 { return d.gain }

// Run processes an electrode-scale waveform.
func (d *DigitalCS) Run(input []float64, inputRate float64) Output {
	return d.RunGrid(dsp.Resample(input, inputRate, d.cfg.GridRate()))
}

// RunGrid is Run for a grid-rate input.
func (d *DigitalCS) RunGrid(grid []float64) Output {
	cfg := d.cfg
	ctx := blocks.NewContext(cfg.GridRate(), cfg.Seed)
	amplified := d.lna.Process(ctx, grid)
	sh := &blocks.SampleHold{
		Decimation:  cfg.SimOversample,
		Cap:         d.sampleCap,
		Temperature: cfg.Tech.Temperature,
	}
	held := sh.Sample(ctx, amplified)
	digital := d.sar.Convert(held)
	// Exact digital compression; the MAC has no analog imperfections.
	y := cs.DigitalEncode(d.phi, digital)
	recon := d.rec.Reconstruct(y)
	return Output{
		Samples:  recon,
		Rate:     cfg.Sys.FSample(),
		Gain:     d.gain,
		Power:    d.PowerBreakdown(dsp.RMS(digital), dsp.Mean(digital)),
		AreaCaps: d.Area(),
	}
}

// PowerBreakdown evaluates the digital-CS power: the full Fig 1a chain at
// Nyquist rate, plus the MAC unit and matrix shift register, with the
// transmitter at the compressed word rate and accumulator width.
func (d *DigitalCS) PowerBreakdown(vinRMS, vinMean float64) power.Breakdown {
	cfg := d.cfg
	fclk, fs := cfg.Sys.FClk(cfg.Bits), cfg.Sys.FSample()
	lnaP := power.LNAParams{
		GBW:       d.gain * cfg.Sys.LNABandwidth(),
		CLoad:     d.sampleCap,
		NoiseRMS:  cfg.LNANoise,
		Bandwidth: cfg.Sys.LNABandwidth(),
		FClk:      fclk,
	}
	wordRate := fs * float64(cfg.M) / float64(cfg.NPhi)
	addsPerSecond := float64(cfg.Sparsity) * fs
	return power.Breakdown{
		power.CompLNA:         power.LNA(cfg.Tech, cfg.Sys, lnaP),
		power.CompSampleHold:  power.SampleHold(cfg.Tech, cfg.Sys, cfg.Bits, fclk),
		power.CompComparator:  power.Comparator(cfg.Tech, cfg.Sys, cfg.Bits, fclk, fs, 0),
		power.CompSARLogic:    power.SARLogic(cfg.Tech, cfg.Sys, cfg.Bits, fclk, fs),
		power.CompDAC:         power.DAC(cfg.Sys, cfg.Bits, fclk, cfg.Tech.CUnitMin, vinRMS, vinMean),
		power.CompTransmitter: power.TransmitterRate(cfg.Tech, d.accBits, wordRate),
		power.CompCSEncoder: power.DigitalMAC(cfg.Tech, cfg.Sys, d.accBits, addsPerSecond) +
			power.CSEncoderLogic(cfg.Tech, cfg.Sys, cfg.NPhi, fclk),
		power.CompLeakage: power.Leakage(cfg.Tech, cfg.Sys, 2<<cfg.Bits),
	}
}

// Area returns the capacitor area — the digital variant adds no analog
// capacitors beyond the Fig 1a chain.
func (d *DigitalCS) Area() float64 {
	return power.CapCount(d.cfg.Tech,
		power.ADCCapacitance(d.cfg.Bits, d.cfg.Tech.CUnitMin, d.sampleCap))
}

// ActiveCS is the active analog CS chain: one OTA integrator per
// measurement row performs exact accumulation (scaled by 1/maxCount to
// stay in range), then the reduced-rate SAR digitises the integrator
// outputs. The OTAs dominate its power — the paper's motivation for the
// passive charge-sharing alternative.
type ActiveCS struct {
	cfg      CSConfig
	gain     float64
	intGain  float64 // integrator scale Cs/Cint, sized for the busiest row
	otaNoise float64
	enc      *cs.ActiveEncoder
	rec      *cs.Reconstructor
	sar      *adc.SAR
	lna      *blocks.LNA
	maxCount int
}

// NewActiveCS builds the active CS chain. It panics if M is not set.
func NewActiveCS(cfg CSConfig) *ActiveCS {
	cfg = cfg.withDefaults()
	if cfg.M <= 0 || cfg.M > cfg.NPhi {
		panic("chain: active CS requires 0 < M <= NPhi")
	}
	gain := cfg.Headroom * (cfg.Sys.VFS / 2) / cfg.InputPeak
	phi := cs.GenerateSRBM(cfg.M, cfg.NPhi, cfg.Sparsity, cfg.Seed)
	maxCount := 0
	for _, k := range phi.RowCounts() {
		if k > maxCount {
			maxCount = k
		}
	}
	if maxCount < 1 {
		maxCount = 1
	}
	// Sampling kT/C of the integrator input capacitor (C_int/CRatio).
	csIn := cfg.CHold / cfg.CRatio
	otaNoise := math.Sqrt(cfg.Tech.KT() / csIn)
	const finiteGain = 1e-3 // 60 dB OTA: per-step loss 1/A0
	enc := cs.NewActiveEncoder(cs.ActiveEncoderConfig{
		Phi:       phi,
		OTANoise:  otaNoise,
		GainError: finiteGain,
		Seed:      cfg.Seed,
	})
	intGain := 1 / float64(maxCount)
	// Reconstruction knows the nominal (scaled, finite-gain) map.
	a := enc.EffectiveMatrix()
	for i := range a {
		for j := range a[i] {
			a[i][j] *= intGain
		}
	}
	lsb := cfg.Sys.VFS / math.Pow(2, float64(cfg.Bits))
	c := &ActiveCS{
		cfg:      cfg,
		gain:     gain,
		intGain:  intGain,
		otaNoise: otaNoise,
		enc:      enc,
		rec:      cs.NewMatrixReconstructor(a, cfg.NPhi, cfg.MaxAtoms, 1e-4),
		maxCount: maxCount,
		sar: adc.New(adc.Config{
			Bits:            cfg.Bits,
			VFS:             cfg.Sys.VFS,
			UnitCap:         cfg.Tech.CUnitMin,
			MismatchCoeff:   cfg.Tech.MismatchSigma(cfg.Tech.CUnitMin),
			ComparatorNoise: cfg.ComparatorNoiseLSB * lsb,
			Seed:            cfg.Seed,
		}),
		lna: &blocks.LNA{
			Gain:         gain,
			NoiseRMS:     cfg.LNANoise,
			Bandwidth:    cfg.Sys.LNABandwidth(),
			HD3FullScale: 0.001,
			ClipLevel:    cfg.Sys.VFS / 2,
		},
	}
	return c
}

// Gain returns the LNA gain.
func (c *ActiveCS) Gain() float64 { return c.gain }

// MeasurementRate returns the CS-side ADC rate (Hz).
func (c *ActiveCS) MeasurementRate() float64 {
	return c.cfg.Sys.FSample() * float64(c.cfg.M) / float64(c.cfg.NPhi)
}

// Run processes an electrode-scale waveform.
func (c *ActiveCS) Run(input []float64, inputRate float64) Output {
	return c.RunGrid(dsp.Resample(input, inputRate, c.cfg.GridRate()))
}

// RunGrid is Run for a grid-rate input.
func (c *ActiveCS) RunGrid(grid []float64) Output {
	cfg := c.cfg
	ctx := blocks.NewContext(cfg.GridRate(), cfg.Seed)
	amplified := c.lna.Process(ctx, grid)
	sampled := dsp.Decimate(amplified, cfg.SimOversample)
	y := c.enc.Encode(sampled)
	dsp.Scale(y, c.intGain)
	yq := c.sar.Convert(y)
	recon := c.rec.Reconstruct(yq)
	return Output{
		Samples:  recon,
		Rate:     cfg.Sys.FSample(),
		Gain:     c.gain,
		Power:    c.PowerBreakdown(dsp.RMS(yq), dsp.Mean(yq)),
		AreaCaps: c.Area(),
	}
}

// PowerBreakdown evaluates the active-CS power: the integrator bank
// replaces the passive network; ADC and transmitter run at the reduced
// measurement rate; the matrix shift register is shared with the passive
// design.
func (c *ActiveCS) PowerBreakdown(vinRMS, vinMean float64) power.Breakdown {
	cfg := c.cfg
	fs := cfg.Sys.FSample()
	fsCS := c.MeasurementRate()
	fclkCS := float64(cfg.Bits+1) * fsCS
	fclkIn := cfg.Sys.FClk(cfg.Bits)
	lnaP := power.LNAParams{
		GBW:       c.gain * cfg.Sys.LNABandwidth(),
		CLoad:     cfg.CHold / cfg.CRatio, // LNA drives the sampling caps
		NoiseRMS:  cfg.LNANoise,
		Bandwidth: cfg.Sys.LNABandwidth(),
		FClk:      fs,
	}
	// Each integrator settles once per input sample; its noise budget is
	// relaxed by the averaging over its mean accumulation count.
	meanCount := float64(cfg.Sparsity) * float64(cfg.NPhi) / float64(cfg.M)
	intP := power.IntegratorParams{
		GBW:       4 * fs,
		CInt:      cfg.CHold,
		NoiseRMS:  cfg.LNANoise * math.Sqrt(meanCount),
		Bandwidth: fs / 2,
	}
	switches := 4*(cfg.M+cfg.Sparsity) + (2 << cfg.Bits)
	return power.Breakdown{
		power.CompLNA:         power.LNA(cfg.Tech, cfg.Sys, lnaP),
		power.CompIntegrators: power.IntegratorBank(cfg.Tech, cfg.Sys, cfg.M, intP),
		power.CompComparator:  power.Comparator(cfg.Tech, cfg.Sys, cfg.Bits, fclkCS, fsCS, 0),
		power.CompSARLogic:    power.SARLogic(cfg.Tech, cfg.Sys, cfg.Bits, fclkCS, fsCS),
		power.CompDAC:         power.DAC(cfg.Sys, cfg.Bits, fclkCS, cfg.Tech.CUnitMin, vinRMS, vinMean),
		power.CompTransmitter: power.Transmitter(cfg.Tech, cfg.Bits, fclkCS),
		power.CompCSEncoder:   power.CSEncoderLogic(cfg.Tech, cfg.Sys, cfg.NPhi, fclkIn),
		power.CompLeakage:     power.Leakage(cfg.Tech, cfg.Sys, switches),
	}
}

// Area returns the capacitor area: the integrator array plus the ADC.
func (c *ActiveCS) Area() float64 {
	cfg := c.cfg
	total := power.CSEncoderCapacitance(cfg.Sparsity, cfg.M, cfg.CHold/cfg.CRatio, cfg.CHold) +
		power.ADCCapacitance(cfg.Bits, cfg.Tech.CUnitMin, 0)
	return power.CapCount(cfg.Tech, total)
}
