package chain

import (
	"math"
	"testing"

	"efficsense/internal/dsp"
	"efficsense/internal/power"
	"efficsense/internal/siggen"
	"efficsense/internal/tech"
	"efficsense/internal/xrand"
)

func testCommon(bits int, vn float64, seed int64) Common {
	return Common{
		Tech:     tech.GPDK045(),
		Sys:      tech.DefaultSystem(),
		Bits:     bits,
		LNANoise: vn,
		Seed:     seed,
	}
}

// testInput builds an in-band electrode-scale multitone at 512 Hz.
func testInput(n int) []float64 {
	return siggen.Multitone(n, 512, []siggen.Tone{
		{Freq: 7, Amp: 80e-6},
		{Freq: 19, Amp: 40e-6, Phase: 1.1},
		{Freq: 43, Amp: 20e-6, Phase: 2.3},
	})
}

func TestBaselineRunShapes(t *testing.T) {
	b := NewBaseline(testCommon(8, 3e-6, 1))
	in := testInput(5120) // 10 s at 512 Hz
	out := b.Run(in, 512)
	if math.Abs(out.Rate-537.6) > 1e-9 {
		t.Fatalf("output rate = %g", out.Rate)
	}
	wantLen := int(math.Ceil(float64(len(dsp.Resample(in, 512, b.cfg.GridRate()))) / 4))
	if math.Abs(float64(len(out.Samples)-wantLen)) > 1 {
		t.Fatalf("output length %d, want ~%d", len(out.Samples), wantLen)
	}
	if out.Power.Total() <= 0 {
		t.Fatal("no power estimate")
	}
	if out.AreaCaps < 256 {
		t.Fatalf("baseline area = %g C_u, want >= 2^8", out.AreaCaps)
	}
}

func TestBaselineFidelityImprovesWithLowerNoise(t *testing.T) {
	in := testInput(5120)
	snr := func(vn float64) float64 {
		cfg := testCommon(8, vn, 2)
		b := NewBaseline(cfg)
		out := b.Run(in, 512)
		ref := Reference(cfg, in, 512)
		return dsp.SNRVersusReference(ref, out.Samples)
	}
	low := snr(1e-6)
	high := snr(20e-6)
	if low < high+6 {
		t.Fatalf("SNR at 1 µV (%g dB) should beat 20 µV (%g dB) clearly", low, high)
	}
	if low < 20 {
		t.Fatalf("quiet-chain SNR = %g dB, too low", low)
	}
}

func TestBaselinePowerDropsWithNoiseFloor(t *testing.T) {
	in := testInput(1024)
	p := func(vn float64) float64 {
		return NewBaseline(testCommon(8, vn, 3)).Run(in, 512).Power.Total()
	}
	if p(1e-6) <= p(10e-6) {
		t.Fatal("relaxing the noise floor should reduce power")
	}
}

func TestBaselineGainMapsToFullScale(t *testing.T) {
	b := NewBaseline(testCommon(8, 5e-6, 4))
	// 250 µV peak × gain ≈ 0.7 V (headroom × VFS/2).
	if got := 250e-6 * b.Gain(); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("gain maps peak to %g, want 0.7", got)
	}
}

func TestCSRunShapes(t *testing.T) {
	cfg := CSConfig{Common: testCommon(8, 5e-6, 5), M: 96, NPhi: 192}
	c := NewCS(cfg)
	in := testInput(5120)
	out := c.Run(in, 512)
	if math.Abs(out.Rate-537.6) > 1e-9 {
		t.Fatalf("output rate = %g", out.Rate)
	}
	if len(out.Samples)%192 != 0 {
		t.Fatalf("output length %d not whole frames", len(out.Samples))
	}
	if out.Power[power.CompCSEncoder] <= 0 {
		t.Fatal("CS encoder power missing")
	}
	if _, ok := out.Power[power.CompSampleHold]; ok {
		t.Fatal("CS chain should not carry a separate S&H block")
	}
}

func TestCSReconstructsInBandSignal(t *testing.T) {
	cfg := CSConfig{Common: testCommon(8, 2e-6, 6), M: 96, NPhi: 192}
	c := NewCS(cfg)
	in := testInput(5120)
	out := c.Run(in, 512)
	ref := Reference(cfg.Common, in, 512)
	snr := dsp.SNRVersusReference(ref[:len(out.Samples)], out.Samples)
	if snr < 8 {
		t.Fatalf("CS reconstruction SNR = %g dB, want > 8", snr)
	}
}

func TestCSTransmitterSavings(t *testing.T) {
	in := testInput(2048)
	base := NewBaseline(testCommon(8, 5e-6, 7)).Run(in, 512)
	csOut := NewCS(CSConfig{Common: testCommon(8, 5e-6, 7), M: 75, NPhi: 384}).Run(in, 512)
	rTX := base.Power[power.CompTransmitter] / csOut.Power[power.CompTransmitter]
	want := 384.0 / 75
	if math.Abs(rTX-want) > 1e-6 {
		t.Fatalf("transmitter saving = %g, want %g", rTX, want)
	}
}

func TestCSAreaMuchLargerThanBaseline(t *testing.T) {
	in := testInput(1024)
	base := NewBaseline(testCommon(8, 5e-6, 8)).Run(in, 512)
	csOut := NewCS(CSConfig{Common: testCommon(8, 5e-6, 8), M: 150, NPhi: 384}).Run(in, 512)
	if csOut.AreaCaps < 5*base.AreaCaps {
		t.Fatalf("CS area %g should dwarf baseline %g (paper Fig 9)", csOut.AreaCaps, base.AreaCaps)
	}
}

func TestCSMeasurementRate(t *testing.T) {
	c := NewCS(CSConfig{Common: testCommon(8, 5e-6, 9), M: 150, NPhi: 384})
	want := 537.6 * 150 / 384
	if got := c.MeasurementRate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("measurement rate = %g, want %g", got, want)
	}
	if got := c.CompressionRatio(); math.Abs(got-2.56) > 1e-9 {
		t.Fatalf("compression ratio = %g", got)
	}
}

func TestCSPanicsWithoutM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing M should panic")
		}
	}()
	NewCS(CSConfig{Common: testCommon(8, 5e-6, 10)})
}

func TestReferenceIsCleanAndUnityGain(t *testing.T) {
	cfg := testCommon(8, 5e-6, 11)
	in := testInput(5120)
	ref := Reference(cfg, in, 512)
	// Unity gain: RMS comparable to the input's.
	rIn, rRef := dsp.RMS(in), dsp.RMS(ref)
	if math.Abs(rRef/rIn-1) > 0.2 {
		t.Fatalf("reference gain = %g, want ~1", rRef/rIn)
	}
	// Deterministic: no noise.
	ref2 := Reference(cfg, in, 512)
	for i := range ref {
		if ref[i] != ref2[i] {
			t.Fatal("reference not deterministic")
		}
	}
}

func TestChainsDeterministicPerSeed(t *testing.T) {
	in := testInput(2048)
	a := NewBaseline(testCommon(8, 5e-6, 12)).Run(in, 512)
	b := NewBaseline(testCommon(8, 5e-6, 12)).Run(in, 512)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("baseline chain not reproducible")
		}
	}
}

func TestPowerLandsInPaperBands(t *testing.T) {
	// Near the paper's optima: baseline (N=8, vn≈2µV) ~8.8 µW and CS
	// (M=75..150, relaxed vn) ~2.4 µW; allow generous bands since our
	// substrate differs, but the ~3.6× ordering must hold.
	in := testInput(2048)
	base := NewBaseline(testCommon(8, 2e-6, 13)).Run(in, 512)
	csOut := NewCS(CSConfig{Common: testCommon(8, 7e-6, 13), M: 75, NPhi: 384}).Run(in, 512)
	pb, pc := base.Power.Total(), csOut.Power.Total()
	if pb < 4e-6 || pb > 16e-6 {
		t.Fatalf("baseline power %g W outside paper band", pb)
	}
	if pc < 0.8e-6 || pc > 5e-6 {
		t.Fatalf("CS power %g W outside paper band", pc)
	}
	if r := pb / pc; r < 2 || r > 7 {
		t.Fatalf("power ratio %g, want in the 2–7 band around the paper's 3.6", r)
	}
}

func TestGridRateDefault(t *testing.T) {
	cfg := testCommon(8, 5e-6, 14).withDefaults()
	if got := cfg.GridRate(); math.Abs(got-4*537.6) > 1e-9 {
		t.Fatalf("grid rate = %g", got)
	}
}

func TestReferenceTracksInputSpectrum(t *testing.T) {
	cfg := testCommon(8, 5e-6, 15)
	rng := xrand.New(99)
	in := siggen.ColoredNoise(rng, 5120, 1, 30e-6)
	ref := Reference(cfg, in, 512)
	// In-band correlation with a resampled copy should be near 1.
	direct := dsp.Resample(in, 512, cfg.withDefaults().Sys.FSample())
	n := len(ref)
	if len(direct) < n {
		n = len(direct)
	}
	if rho := dsp.CrossCorrelation(ref[:n], direct[:n]); rho < 0.95 {
		t.Fatalf("reference decorrelated from input: rho = %g", rho)
	}
}
