package chain

import (
	"math"
	"testing"

	"efficsense/internal/cs"
	"efficsense/internal/dsp"
	"efficsense/internal/power"
)

func variantCfg(seed int64) CSConfig {
	return CSConfig{Common: testCommon(8, 5e-6, seed), M: 96, NPhi: 192}
}

func TestDigitalCSRunShapes(t *testing.T) {
	d := NewDigitalCS(variantCfg(31))
	in := testInput(5120)
	out := d.Run(in, 512)
	if math.Abs(out.Rate-537.6) > 1e-9 {
		t.Fatalf("rate %g", out.Rate)
	}
	if len(out.Samples)%192 != 0 {
		t.Fatalf("length %d not whole frames", len(out.Samples))
	}
	// Digital CS pays full ADC power: its S&H power matches the baseline's.
	base := NewBaseline(testCommon(8, 5e-6, 31)).Run(in, 512)
	if out.Power[power.CompSampleHold] != base.Power[power.CompSampleHold] {
		t.Fatal("digital CS should pay the full-rate S&H power")
	}
	// But the transmitter is compressed.
	if out.Power[power.CompTransmitter] >= base.Power[power.CompTransmitter] {
		t.Fatal("digital CS should transmit less than the baseline")
	}
	// And no analog capacitor array beyond the ADC.
	if out.AreaCaps != base.AreaCaps {
		t.Fatalf("digital CS area %g should equal baseline %g", out.AreaCaps, base.AreaCaps)
	}
}

func TestDigitalCSReconstructs(t *testing.T) {
	cfg := variantCfg(32)
	cfg.LNANoise = 2e-6
	d := NewDigitalCS(cfg)
	in := testInput(5120)
	out := d.Run(in, 512)
	ref := Reference(cfg.Common, in, 512)
	snr := dsp.SNRVersusReference(ref[:len(out.Samples)], out.Samples)
	if snr < 8 {
		t.Fatalf("digital CS reconstruction SNR = %g dB", snr)
	}
}

func TestActiveCSRunShapes(t *testing.T) {
	c := NewActiveCS(variantCfg(33))
	in := testInput(5120)
	out := c.Run(in, 512)
	if len(out.Samples)%192 != 0 {
		t.Fatalf("length %d not whole frames", len(out.Samples))
	}
	if out.Power[power.CompIntegrators] <= 0 {
		t.Fatal("integrator power missing")
	}
	// Transmitter compressed like the passive chain.
	want := 537.6 * 96 / 192 * 8 * 1e-9
	if math.Abs(out.Power[power.CompTransmitter]-want) > 1e-12 {
		t.Fatalf("active CS TX power %g, want %g", out.Power[power.CompTransmitter], want)
	}
}

func TestActiveCSReconstructs(t *testing.T) {
	cfg := variantCfg(34)
	cfg.LNANoise = 2e-6
	c := NewActiveCS(cfg)
	in := testInput(5120)
	out := c.Run(in, 512)
	ref := Reference(cfg.Common, in, 512)
	snr := dsp.SNRVersusReference(ref[:len(out.Samples)], out.Samples)
	if snr < 8 {
		t.Fatalf("active CS reconstruction SNR = %g dB", snr)
	}
}

func TestPassiveBeatsActiveAndDigitalOnPower(t *testing.T) {
	// The paper's Section III argument: the passive charge-sharing encoder
	// is the cheapest CS realisation — actives pay OTAs, digital pays the
	// full-rate ADC chain + MAC.
	in := testInput(2048)
	cfg := variantCfg(35)
	passive := NewCS(cfg).Run(in, 512).Power.Total()
	active := NewActiveCS(cfg).Run(in, 512).Power.Total()
	digital := NewDigitalCS(cfg).Run(in, 512).Power.Total()
	if passive >= active {
		t.Fatalf("passive %g should beat active %g", passive, active)
	}
	if passive >= digital {
		t.Fatalf("passive %g should beat digital %g", passive, digital)
	}
}

func TestVariantPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("digital no M", func() { NewDigitalCS(CSConfig{Common: testCommon(8, 5e-6, 36)}) })
	mustPanic("active no M", func() { NewActiveCS(CSConfig{Common: testCommon(8, 5e-6, 36)}) })
}

func TestVariantGainsAndRates(t *testing.T) {
	cfg := variantCfg(37)
	d := NewDigitalCS(cfg)
	a := NewActiveCS(cfg)
	if d.Gain() != a.Gain() {
		t.Fatal("variants should share the baseline LNA gain")
	}
	if math.Abs(a.MeasurementRate()-537.6/2) > 1e-9 {
		t.Fatalf("active CS measurement rate %g", a.MeasurementRate())
	}
}

func TestCSReconMethodSelectable(t *testing.T) {
	in := testInput(3072)
	cfg := variantCfg(38)
	cfg.LNANoise = 2e-6
	ref := Reference(cfg.Common, in, 512)
	// Ridge has no sparsity prior, so its floor is lower than the greedy
	// methods'.
	floors := map[cs.Method]float64{cs.MethodOMP: 3, cs.MethodIHT: 3, cs.MethodRidge: 1.5}
	for method, floor := range floors {
		c := cfg
		c.ReconMethod = method
		out := NewCS(c).Run(in, 512)
		n := len(out.Samples)
		snr := dsp.SNRVersusReference(ref[:n], out.Samples[:n])
		if snr < floor {
			t.Errorf("%s reconstruction SNR = %g dB, below %g", method, snr, floor)
		}
	}
}
