// Command benchdiff compares `go test -json -bench` capture files (the
// BENCH_PR*.json baselines written by `make bench`) and prints a
// per-benchmark, per-unit delta table. It is informational by design:
// the exit status is zero whenever the new capture parses, regardless
// of how the numbers moved — regressions are for humans (or benchstat
// on the archived CI artifacts) to judge, not for the build to gate on.
//
// Usage:
//
//	go run ./cmd/benchdiff OLD.json [OLD2.json ...] NEW.json
//
// The last file is the fresh capture; every earlier file is a baseline.
// With several baselines the diff runs against the best historical mean
// per benchmark and unit (highest for throughput units, lowest for
// ns/op, B/op, allocs/op), so a number that regressed two releases ago
// cannot hide a further slide by only comparing to the regressed run.
// A missing or empty baseline is reported and skipped (exit 0), so the
// target works on fresh clones that have never run `make bench`.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches the result line a benchmark emits through the JSON
// stream's Output events, e.g.
//
//	BenchmarkSweepColdCS-8   	      12	  98231145 ns/op	       101.2 points/s	    1024 B/op	       3 allocs/op
//
// The -N GOMAXPROCS suffix is folded away so runs on different machines
// still line up.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// sample is the measurements of one benchmark run, keyed by unit.
type sample map[string]float64

// parseFile returns every benchmark sample in a go test -json stream,
// keyed by benchmark name. Output events are fragments of the package's
// text stream — a slow benchmark's result line arrives split across
// events (the name flushes before the first iteration finishes) — so
// fragments are reassembled per package and split on real newlines
// before matching.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string][]sample)
	pending := make(map[string]string) // package → unterminated tail
	record := func(line string) {
		if name, s, ok := parseBenchOutput(line); ok {
			out[name] = append(out[name], s)
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action  string
			Package string
			Output  string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate stray non-JSON lines
		}
		if ev.Action != "output" {
			continue
		}
		text := pending[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(text, '\n')
			if nl < 0 {
				break
			}
			record(text[:nl])
			text = text[nl+1:]
		}
		pending[ev.Package] = text
	}
	for _, tail := range pending {
		record(tail)
	}
	return out, sc.Err()
}

// parseBenchOutput parses one benchmark result line into its unit map.
func parseBenchOutput(line string) (string, sample, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", nil, false
	}
	fields := strings.Fields(m[3])
	if len(fields)%2 != 0 || len(fields) == 0 {
		return "", nil, false
	}
	s := make(sample, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		s[fields[i+1]] = v
	}
	return m[1], s, true
}

// mean averages one unit across a benchmark's samples; ok is false when
// no sample carries the unit.
func mean(samples []sample, unit string) (float64, bool) {
	var sum float64
	var n int
	for _, s := range samples {
		if v, have := s[unit]; have {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// higherIsBetter: throughput-style units improve upward, everything the
// testing package emits natively (ns/op, B/op, allocs/op) improves
// downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s")
}

func formatVal(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// baseline is one parsed historical capture.
type baseline struct {
	path string
	runs map[string][]sample
}

// bestMean returns the best mean a unit attains for a benchmark across
// the baselines — the highest for throughput units, the lowest for
// everything else — and the path of the capture that set it.
func bestMean(bases []baseline, name, unit string) (float64, string, bool) {
	var best float64
	var from string
	found := false
	for _, b := range bases {
		v, ok := mean(b.runs[name], unit)
		if !ok {
			continue
		}
		better := !found || (v > best) == higherIsBetter(unit)
		if better {
			best, from, found = v, b.path, true
		}
	}
	return best, from, found
}

func run(oldPaths []string, newPath string, w *bufio.Writer) error {
	defer w.Flush()
	var bases []baseline
	for _, p := range oldPaths {
		runs, err := parseFile(p)
		if err != nil {
			fmt.Fprintf(w, "benchdiff: no baseline %s (%v) — skipped\n", p, err)
			continue
		}
		if len(runs) == 0 {
			fmt.Fprintf(w, "benchdiff: baseline %s holds no benchmark samples — skipped\n", p)
			continue
		}
		bases = append(bases, baseline{path: p, runs: runs})
	}
	newRuns, err := parseFile(newPath)
	if err != nil {
		return fmt.Errorf("reading %s: %w", newPath, err)
	}
	if len(bases) == 0 || len(newRuns) == 0 {
		fmt.Fprintf(w, "benchdiff: no benchmark samples to compare (%d usable baselines, %s: %d)\n",
			len(bases), newPath, len(newRuns))
		return nil
	}

	names := make([]string, 0, len(newRuns))
	for name := range newRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	baseNames := make([]string, len(bases))
	for i, b := range bases {
		baseNames[i] = b.path
	}
	fmt.Fprintf(w, "benchdiff best(%s) → %s (mean over samples; informational, never gates)\n\n",
		strings.Join(baseNames, ", "), newPath)
	fmt.Fprintf(w, "%-44s %-12s %14s %14s %10s\n", "benchmark", "unit", "best", "new", "delta")
	for _, name := range names {
		news := newRuns[name]

		units := make(map[string]bool)
		for _, s := range news {
			for u := range s {
				units[u] = true
			}
		}
		sorted := make([]string, 0, len(units))
		for u := range units {
			sorted = append(sorted, u)
		}
		sort.Strings(sorted)

		for _, unit := range sorted {
			nv, _ := mean(news, unit)
			ov, from, haveOld := bestMean(bases, name, unit)
			if !haveOld || ov == 0 {
				fmt.Fprintf(w, "%-44s %-12s %14s %14s %10s\n", name, unit, "-", formatVal(nv), "new")
				continue
			}
			delta := (nv - ov) / ov * 100
			mark := ""
			if math.Abs(delta) >= 2 {
				if (delta > 0) == higherIsBetter(unit) {
					mark = " ✓"
				} else {
					mark = " ✗"
				}
			}
			src := ""
			if len(bases) > 1 {
				src = "  (" + from + ")"
			}
			fmt.Fprintf(w, "%-44s %-12s %14s %14s %+9.1f%%%s%s\n",
				name, unit, formatVal(ov), formatVal(nv), delta, mark, src)
		}
	}
	return nil
}

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json [OLD2.json ...] NEW.json")
		os.Exit(2)
	}
	paths := os.Args[1:]
	if err := run(paths[:len(paths)-1], paths[len(paths)-1], bufio.NewWriter(os.Stdout)); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
