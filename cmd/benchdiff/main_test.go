package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	name, s, ok := parseBenchOutput(
		"BenchmarkSweepColdCS-8   \t      12\t  98231145 ns/op\t       101.2 points/s\t    1024 B/op\t       3 allocs/op")
	if !ok || name != "BenchmarkSweepColdCS" {
		t.Fatalf("parse: ok=%v name=%q", ok, name)
	}
	want := map[string]float64{"ns/op": 98231145, "points/s": 101.2, "B/op": 1024, "allocs/op": 3}
	for unit, v := range want {
		if s[unit] != v {
			t.Errorf("%s = %g, want %g", unit, s[unit], v)
		}
	}
	for _, bad := range []string{
		"=== RUN   TestSomething",
		"BenchmarkBroken-8 not numbers here",
		"pkg: efficsense/internal/dse",
	} {
		if _, _, ok := parseBenchOutput(bad); ok {
			t.Errorf("parsed non-result line %q", bad)
		}
	}
}

// oldStream's second sample is split across two Output events the way
// go test -json fragments a slow benchmark's result line (the name
// flushes before the first iteration finishes), with another package's
// event interleaved between the fragments.
const oldStream = `{"Action":"output","Package":"p","Output":"BenchmarkSweep-8   \t1\t100 ns/op\t10 points/s\t5 allocs/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkSweep-8   \t"}
{"Action":"output","Package":"q","Output":"BenchmarkOther-8   \t1\t9 ns/op\n"}
{"Action":"output","Package":"p","Output":"1\t120 ns/op\t12 points/s\t5 allocs/op\n"}
{"Action":"run","Package":"p"}
not even json
`

const newStream = `{"Action":"output","Package":"p","Output":"BenchmarkSweep-4   \t1\t50 ns/op\t55 points/s\t0 allocs/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkFresh-4   \t1\t7 ns/op\n"}
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRunDiff pins the comparison semantics: sample means, GOMAXPROCS
// suffixes folded, throughput improvements marked as improvements, and
// benchmarks without a baseline labelled new rather than diffed.
func TestRunDiff(t *testing.T) {
	oldPath := writeTemp(t, "old.json", oldStream)
	newPath := writeTemp(t, "new.json", newStream)

	var sb strings.Builder
	if err := run([]string{oldPath}, newPath, bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"BenchmarkSweep", "ns/op", "110", "50", // mean(100,120)=110 → 50
		"points/s", "11", "55", "+400.0% ✓", // throughput up = better
		"allocs/op", "-100.0% ✓", // allocations down = better
		"BenchmarkFresh",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-54.5% ✓") {
		t.Errorf("ns/op drop should be marked an improvement:\n%s", out)
	}
}

// TestRunMissingBaseline: a fresh clone without BENCH files must not
// fail the (non-gating) target.
func TestRunMissingBaseline(t *testing.T) {
	newPath := writeTemp(t, "new.json", newStream)
	var sb strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "absent.json")}, newPath, bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no baseline") {
		t.Errorf("missing baseline not reported:\n%s", sb.String())
	}
}

// TestRunMultiBaselineBestOf pins the best-of semantics: with several
// baselines the diff runs against the best historical mean per unit —
// the lowest ns/op, the highest points/s — wherever each came from, and
// the winning capture is named. A baseline that regressed later must
// not become the comparison floor.
func TestRunMultiBaselineBestOf(t *testing.T) {
	// Baseline A: fast ns/op (100) but weak throughput (10 points/s).
	a := writeTemp(t, "a.json",
		`{"Action":"output","Package":"p","Output":"BenchmarkSweep-8   \t1\t100 ns/op\t10 points/s\n"}`+"\n")
	// Baseline B: slower ns/op (200) but stronger throughput (40 points/s).
	b := writeTemp(t, "b.json",
		`{"Action":"output","Package":"p","Output":"BenchmarkSweep-8   \t1\t200 ns/op\t40 points/s\n"}`+"\n")
	// New: 150 ns/op (worse than A's 100), 20 points/s (worse than B's 40).
	n := writeTemp(t, "n.json",
		`{"Action":"output","Package":"p","Output":"BenchmarkSweep-8   \t1\t150 ns/op\t20 points/s\n"}`+"\n")

	var sb strings.Builder
	if err := run([]string{a, b}, n, bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// ns/op: best is A's 100 → +50% regression.
	if !strings.Contains(out, "+50.0% ✗") {
		t.Errorf("ns/op best-of diff wrong:\n%s", out)
	}
	// points/s: best is B's 40 → -50% regression, attributed to b.json.
	if !strings.Contains(out, "-50.0% ✗") {
		t.Errorf("points/s best-of diff wrong:\n%s", out)
	}
	if !strings.Contains(out, a) || !strings.Contains(out, b) {
		t.Errorf("winning baselines not attributed:\n%s", out)
	}

	// One absent baseline is skipped without losing the other.
	sb.Reset()
	if err := run([]string{filepath.Join(t.TempDir(), "gone.json"), a}, n, bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "skipped") || !strings.Contains(sb.String(), "+50.0% ✗") {
		t.Errorf("partial baseline set mishandled:\n%s", sb.String())
	}
}
