package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"efficsense/internal/experiments"
)

// captureStdout redirects os.Stdout for the duration of f.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := f()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), errRun
}

func TestCmdTables(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdTables(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "Table III", "LNA", "Transmitter",
		"537.6 Hz", "1fF", "1nJ", "25.27mV"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables output missing %q", want)
		}
	}
}

func TestCmdPointRejectsUnknownArch(t *testing.T) {
	if err := cmdPoint([]string{"-arch", "martian"}); err == nil {
		t.Fatal("unknown architecture should error")
	}
}

func TestCmdRefineRejectsUnknownArch(t *testing.T) {
	if err := cmdRefine([]string{"-arch", "martian"}); err == nil {
		t.Fatal("unknown architecture should error")
	}
}

func TestCmdSuiteRequiresCSVForSweep(t *testing.T) {
	if err := cmdSuite("sweep", nil); err == nil {
		t.Fatal("sweep without -csv should error")
	}
}

func TestCmdSuiteFromRejectsSweepAndAll(t *testing.T) {
	// Build a tiny sweep CSV in-memory via a temp file.
	f, err := os.CreateTemp(t.TempDir(), "sweep*.csv")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("arch,bits,noise_vrms,m,chold_f,snr_db,accuracy,total_w,area_caps\n" +
		"baseline,8,2e-06,0,0,18,1,8.3e-06,257\n" +
		"cs,8,6e-06,150,8e-14,5.5,0.99,2.7e-06,12266\n")
	f.Close()
	for _, cmd := range []string{"sweep", "all"} {
		if err := cmdSuite(cmd, []string{"-from", f.Name(), "-csv", "/dev/null"}); err == nil {
			t.Fatalf("%s with -from should error", cmd)
		}
	}
	// fig7b from the same file renders the optima.
	out, err := captureStdout(t, func() error {
		return cmdSuite("fig7b", []string{"-from", f.Name()})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cs optimum") || !strings.Contains(out, "power saving") {
		t.Fatalf("fig7b -from output incomplete:\n%s", out)
	}
}

func TestSuiteFlagsReachOptions(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	opts := suiteFlags(fs)
	err := fs.Parse([]string{
		"-seed", "9", "-records", "7", "-train-records", "21",
		"-noise-steps", "3", "-workers", "5", "-epochs", "11",
		"-min-accuracy", "0.9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Seed != 9 || opts.Records != 7 || opts.TrainRecords != 21 ||
		opts.NoiseSteps != 3 || opts.Workers != 5 || opts.Epochs != 11 ||
		opts.MinAccuracy != 0.9 {
		t.Fatalf("parsed options %+v", *opts)
	}
}

// TestProgressAndTraceReachOptions pins the -progress/-trace plumbing:
// newSuite must install a progress sink and route the trace path into
// experiments.Options before the suite is built, or the engine silently
// runs untraced.
func TestProgressAndTraceReachOptions(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	opts := &experiments.Options{Seed: 1}
	suite, closer, err := newSuite(opts, true, tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if suite == nil {
		t.Fatal("no suite")
	}
	if opts.Progress == nil {
		t.Fatal("rich mode left Options.Progress nil")
	}
	if opts.Trace == nil {
		t.Fatal("-trace did not reach Options.Trace")
	}
	if _, err := opts.Trace.Write([]byte("{\"probe\":true}\n")); err != nil {
		t.Fatalf("trace sink not writable: %v", err)
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"probe":true`) {
		t.Fatalf("trace file content %q", data)
	}

	// Minimal mode still reports progress; no trace path leaves Trace nil
	// and the closer a no-op.
	opts2 := &experiments.Options{Seed: 1}
	if _, closer2, err := newSuite(opts2, false, ""); err != nil {
		t.Fatal(err)
	} else if err := closer2(); err != nil {
		t.Fatal(err)
	}
	if opts2.Progress == nil {
		t.Fatal("minimal mode left Options.Progress nil")
	}
	if opts2.Trace != nil {
		t.Fatal("Options.Trace set without -trace")
	}
}

func TestNewSuiteBadTracePath(t *testing.T) {
	opts := &experiments.Options{}
	if _, _, err := newSuite(opts, false, filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")); err == nil {
		t.Fatal("unwritable trace path should error")
	}
}

func TestCmdSuiteBadCapsFlag(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "sweep*.csv")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("arch,bits,noise_vrms,m,chold_f,snr_db,accuracy,total_w,area_caps\n" +
		"baseline,8,2e-06,0,0,18,1,8.3e-06,257\n")
	f.Close()
	if err := cmdSuite("fig10", []string{"-from", f.Name(), "-caps", "10,abc"}); err == nil {
		t.Fatal("malformed -caps should error")
	}
}

func TestCmdSearchRequiresQuery(t *testing.T) {
	if err := cmdSearch(nil); err == nil || !strings.Contains(err.Error(), "-q") {
		t.Fatalf("search without -q should point at the flag, got %v", err)
	}
}

func TestCmdSearchRejectsBadQuery(t *testing.T) {
	if err := cmdSearch([]string{"-q", "best-snr"}); err == nil ||
		!strings.Contains(err.Error(), "unknown goal") {
		t.Fatalf("malformed query should fail parsing, got %v", err)
	}
}

// TestCmdSearchEndToEnd runs a tiny but real search — the full
// synthesize/train/evaluate pipeline at minimal record counts — and
// checks the rendered front, the answer line and the CSV sink.
func TestCmdSearchEndToEnd(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "front.csv")
	out, err := captureStdout(t, func() error {
		return cmdSearch([]string{"-q", "max-snr", "-budget", "24",
			"-records", "2", "-train-records", "24", "-epochs", "20",
			"-noise-steps", "4", "-csv", csvPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"search max-snr:", "front:", "answer:", "power breakdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("search output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines < 2 {
		t.Fatalf("front CSV has %d lines:\n%s", lines, data)
	}
}
