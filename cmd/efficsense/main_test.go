package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout for the duration of f.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := f()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), errRun
}

func TestCmdTables(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdTables(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "Table III", "LNA", "Transmitter",
		"537.6 Hz", "1fF", "1nJ", "25.27mV"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables output missing %q", want)
		}
	}
}

func TestCmdPointRejectsUnknownArch(t *testing.T) {
	if err := cmdPoint([]string{"-arch", "martian"}); err == nil {
		t.Fatal("unknown architecture should error")
	}
}

func TestCmdRefineRejectsUnknownArch(t *testing.T) {
	if err := cmdRefine([]string{"-arch", "martian"}); err == nil {
		t.Fatal("unknown architecture should error")
	}
}

func TestCmdSuiteRequiresCSVForSweep(t *testing.T) {
	if err := cmdSuite("sweep", nil); err == nil {
		t.Fatal("sweep without -csv should error")
	}
}

func TestCmdSuiteFromRejectsSweepAndAll(t *testing.T) {
	// Build a tiny sweep CSV in-memory via a temp file.
	f, err := os.CreateTemp(t.TempDir(), "sweep*.csv")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("arch,bits,noise_vrms,m,chold_f,snr_db,accuracy,total_w,area_caps\n" +
		"baseline,8,2e-06,0,0,18,1,8.3e-06,257\n" +
		"cs,8,6e-06,150,8e-14,5.5,0.99,2.7e-06,12266\n")
	f.Close()
	for _, cmd := range []string{"sweep", "all"} {
		if err := cmdSuite(cmd, []string{"-from", f.Name(), "-csv", "/dev/null"}); err == nil {
			t.Fatalf("%s with -from should error", cmd)
		}
	}
	// fig7b from the same file renders the optima.
	out, err := captureStdout(t, func() error {
		return cmdSuite("fig7b", []string{"-from", f.Name()})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cs optimum") || !strings.Contains(out, "power saving") {
		t.Fatalf("fig7b -from output incomplete:\n%s", out)
	}
}

func TestCmdSuiteBadCapsFlag(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "sweep*.csv")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("arch,bits,noise_vrms,m,chold_f,snr_db,accuracy,total_w,area_caps\n" +
		"baseline,8,2e-06,0,0,18,1,8.3e-06,257\n")
	f.Close()
	if err := cmdSuite("fig10", []string{"-from", f.Name(), "-caps", "10,abc"}); err == nil {
		t.Fatal("malformed -caps should error")
	}
}
