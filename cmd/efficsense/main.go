// Command efficsense regenerates every table and figure of the paper's
// evaluation section from the reproduction library, and exposes the
// pathfinding framework for ad-hoc design-point studies.
//
// Usage:
//
//	efficsense <subcommand> [flags]
//
// Subcommands:
//
//	tables   print Table II (power models) and Table III (parameters)
//	dataset  summarise the synthesized EEG dataset
//	point    evaluate a single design point
//	fig4     LNA noise sweep: SNDR + power + breakdown
//	fig7a    Pareto fronts, SNR vs power
//	fig7b    Pareto fronts, accuracy vs power (+ headline optima)
//	fig8     power breakdown of the two optimal designs
//	fig9     accuracy vs capacitor area
//	fig10    area-constrained Pareto fronts
//	sweep    dump the raw design-space sweep as CSV
//	search   budget-capped goal query ("max-snr@power<=5e-6") over the space
//	all      run every figure in sequence
//
// Common flags (suite subcommands): -records, -seed, -workers,
// -noise-steps, -epochs, -min-accuracy, -csv, -progress, -trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"efficsense/internal/classify"
	"efficsense/internal/cluster"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/eeg"
	"efficsense/internal/experiments"
	"efficsense/internal/report"
	"efficsense/internal/scenario"
	"efficsense/internal/search"
	"efficsense/internal/tech"
	"efficsense/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "tables":
		err = cmdTables(args)
	case "dataset":
		err = cmdDataset(args)
	case "point":
		err = cmdPoint(args)
	case "fig4":
		err = cmdFig4(args)
	case "fig7a", "fig7b", "fig8", "fig9", "fig10", "sweep", "all":
		err = cmdSuite(cmd, args)
	case "search":
		err = cmdSearch(args)
	case "scenarios":
		err = cmdScenarios(args)
	case "ring":
		err = cmdRing(args)
	case "variants":
		err = cmdVariants(args)
	case "refine":
		err = cmdRefine(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "efficsense: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "efficsense %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `efficsense — architectural pathfinding for energy-constrained sensing

  efficsense tables                     Table II & III
  efficsense dataset  [-records N]      EEG dataset summary
  efficsense point    -arch A -bits N -noise V [-m M]
  efficsense fig4     [-bits N] [-csv F]
  efficsense fig7a    [suite flags]
  efficsense fig7b    [suite flags]
  efficsense fig8     [suite flags]
  efficsense fig9     [suite flags]
  efficsense fig10    [-caps 500,2000,8000,32000] [suite flags]
  efficsense sweep    -csv F [suite flags]
  efficsense search   -q QUERY [-budget N] [-probe-records N] [-csv F] [suite flags]
  efficsense variants [-bits N] [-noise V] [-m M] [suite flags]
  efficsense refine   -arch A -bits N [-m M] [-min-accuracy A] [suite flags]
  efficsense scenarios                  list the registered workload scenarios
  efficsense ring     -peers a=http://…,b=http://… [-vnodes N] [-key K]
                                        fleet keyspace placement (efficsensed -peers)
  efficsense all      [suite flags]

suite flags: -scenario NAME (workload; default eeg-epilepsy)
             -records N (default 40; paper uses 500) -seed S -workers W
             -noise-steps N -epochs E -min-accuracy A -csv F
             -progress (rich progress + engine metrics) -trace F (JSONL per-point trace)
`)
}

// suiteFlags registers the shared suite options on a FlagSet.
func suiteFlags(fs *flag.FlagSet) *experiments.Options {
	opts := &experiments.Options{}
	fs.StringVar(&opts.Scenario, "scenario", "",
		"workload scenario (empty = "+scenario.DefaultName+"; `efficsense scenarios` lists the registry)")
	fs.Int64Var(&opts.Seed, "seed", 1, "root seed for every stochastic element")
	fs.IntVar(&opts.Records, "records", 40, "evaluation records (paper: 500)")
	fs.IntVar(&opts.TrainRecords, "train-records", 120, "detector training records")
	fs.IntVar(&opts.NoiseSteps, "noise-steps", 8, "LNA-noise grid resolution")
	fs.IntVar(&opts.Workers, "workers", 0, "sweep workers (0 = GOMAXPROCS)")
	fs.IntVar(&opts.BatchSize, "batch-size", 0,
		"cache-miss points per batched evaluator call (0 = engine default, 1 = per-point dispatch)")
	fs.IntVar(&opts.Epochs, "epochs", 150, "detector training epochs")
	fs.Float64Var(&opts.MinAccuracy, "min-accuracy", 0.98, "application accuracy constraint")
	return opts
}

// newSuite wires progress reporting and the optional JSONL trace sink
// into a suite. With rich=false a minimal "sweep d/t" counter is shown;
// with rich=true each update adds throughput, mean per-point time, cache
// hits and an ETA from the engine's metrics. The returned closer flushes
// the trace file (call it after the figures render).
func newSuite(opts *experiments.Options, rich bool, tracePath string) (*experiments.Suite, func() error, error) {
	closer := func() error { return nil }
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("opening trace sink: %w", err)
		}
		opts.Trace = f
		closer = f.Close
	}
	var suite *experiments.Suite
	if rich {
		opts.Progress = func(done, total int) {
			m := suite.SweepMetrics()
			fmt.Fprintf(os.Stderr, "\rsweep %d/%d  %.1f pt/s  %s/pt  %d cached  eta %s   ",
				done, total, m.Throughput, m.MeanEval.Round(time.Millisecond),
				m.CacheHits, m.ETA.Round(time.Second))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	} else {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	suite = experiments.NewSuite(*opts)
	return suite, closer, nil
}

// printSweepSummary reports the engine counters after a rich-progress run.
func printSweepSummary(suite *experiments.Suite) {
	m := suite.SweepMetrics()
	fmt.Fprintf(os.Stderr,
		"sweep summary: %d evaluated, %d cache hits, %d panics, mean %s/point\n",
		m.Evaluated, m.CacheHits, m.Panics, m.MeanEval.Round(time.Millisecond))
}

func writeCSV(path string, write func(f *os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Table II — power models of the building blocks")
	t2 := report.NewTable("circuit", "model", "reference")
	t2.AddRow("LNA", "Vdd·max(2π·GBW·Cload/(gm/Id), Vref·fclk·Cload, (NEF/vn)²·2π·4kT·BW·VT)", "[16]")
	t2.AddRow("Sample & Hold", "Vref·fclk·12kT·2^(2N)/VFS²", "[14]")
	t2.AddRow("Comparator", "2N·ln2·(fclk−fs)·Cload·VFS·Veff", "[14]")
	t2.AddRow("SAR logic", "0.4·(2N+1)·Clogic·Vdd²·(fclk−fs)", "[17]")
	t2.AddRow("DAC", "2^N·fclk·Cu/(N+1)·{(5/6−2^−N−2^−2N/3)·Vref² − Vin²/2 − 2^−N·Vin·Vref}", "[15]")
	t2.AddRow("Transmitter", "fclk/(N+1)·N·Ebit", "[4],[12]")
	t2.AddRow("CS encoder logic", "(⌈log2 NΦ⌉+1)·NΦ·8·Clogic·Vdd²·fclk", "[17]")
	t2.Render(os.Stdout)

	fmt.Println("\nTable III — technology parameters (gpdk045 extraction)")
	tp := tech.GPDK045()
	t3 := report.NewTable("parameter", "symbol", "value")
	t3.AddRow("min logic capacitance", "Clogic", units.Format(tp.CLogic, "F"))
	t3.AddRow("transconductance efficiency", "gm/Id", fmt.Sprintf("%g /V", tp.GmOverId))
	t3.AddRow("capacitor density", "/", fmt.Sprintf("%.3f fF/µm²", tp.CapDensity*1e15))
	t3.AddRow("min unit capacitor", "Cu,min", units.Format(tp.CUnitMin, "F"))
	t3.AddRow("cap mismatch coefficient", "Cpk", fmt.Sprintf("%g /µm²", tp.CPk))
	t3.AddRow("switch leakage", "Ileak", units.Format(tp.ILeak, "A"))
	t3.AddRow("transmit energy per bit", "Ebit", units.Format(tp.EBit, "J"))
	t3.AddRow("thermal voltage", "VT", units.Format(tp.VT, "V"))
	t3.Render(os.Stdout)

	fmt.Println("\nTable III — design parameters")
	sys := tech.DefaultSystem()
	t4 := report.NewTable("parameter", "symbol", "value")
	t4.AddRow("input bandwidth", "BWin", fmt.Sprintf("%g Hz", sys.BWInput))
	t4.AddRow("measurements / frame", "M, NΦ", "75-150-192, 384")
	t4.AddRow("LNA noise sweep", "vn", "1 - 20 µVrms")
	t4.AddRow("ADC resolution", "N", "6 - 8 bit")
	t4.AddRow("supply", "Vdd", fmt.Sprintf("%g V", sys.VDD))
	t4.AddRow("sample rate", "fsample", fmt.Sprintf("%.1f Hz (2.1·BWin)", sys.FSample()))
	t4.AddRow("SAR clock", "fclk", "(N+1)·fsample")
	t4.AddRow("full scale / reference", "VFS, Vref", fmt.Sprintf("%g V", sys.VFS))
	t4.AddRow("LNA bandwidth", "BWLNA", fmt.Sprintf("%g Hz (3·BWin)", sys.LNABandwidth()))
	t4.Render(os.Stdout)
	return nil
}

func cmdDataset(args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	records := fs.Int("records", 40, "record count")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds := eeg.Synthesize(eeg.DefaultConfig(*seed, *records))
	counts := ds.CountByClass()
	fmt.Printf("Bonn-substitute EEG dataset: %d records @ %.0f Hz (upsampled from %.2f Hz)\n",
		len(ds.Records), ds.Rate, eeg.NativeRate)
	fmt.Printf("  interictal %d, ictal %d, %.1f s per record (%d samples)\n",
		counts[eeg.Interictal], counts[eeg.Ictal],
		float64(len(ds.Records[0].Samples))/ds.Rate, len(ds.Records[0].Samples))
	// Quick detector sanity check mirrors the paper's ~99 % clean regime.
	train, test := ds.Split(0.25)
	det := classify.TrainDetector(train, classify.DetectorConfig{Seed: *seed,
		Train: classify.TrainOptions{Epochs: 120}})
	conf := det.EvaluateDataset(test)
	fmt.Printf("  clean detector accuracy on held-out records: %.3f (sens %.3f, spec %.3f)\n",
		conf.Accuracy(), conf.Sensitivity(), conf.Specificity())
	return nil
}

func cmdPoint(args []string) error {
	fs := flag.NewFlagSet("point", flag.ExitOnError)
	scnName := fs.String("scenario", "", "workload scenario (empty = "+scenario.DefaultName+")")
	arch := fs.String("arch", "baseline", "architecture (scoped to the scenario's set)")
	bits := fs.Int("bits", 8, "ADC resolution")
	noise := fs.Float64("noise", 5e-6, "LNA input-referred noise (V rms)")
	m := fs.Int("m", 150, "CS measurements per frame")
	records := fs.Int("records", 20, "evaluation records")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scn, err := scenario.Lookup(*scnName)
	if err != nil {
		return err
	}
	a, err := scn.ParseArch(*arch)
	if err != nil {
		return err
	}
	suite := experiments.NewSuite(experiments.Options{
		Scenario: scn.Name, Seed: *seed, Records: *records})
	p := core.DesignPoint{Arch: a, Bits: *bits, LNANoise: *noise}
	if a != core.ArchBaseline {
		p.M = *m
	}
	r := suite.Engine().Evaluate(p)
	fmt.Println(dse.Describe(r))
	experiments.RenderBreakdown(os.Stdout, "power breakdown", r.Power)
	return nil
}

// cmdSearch answers one goal-directed query over the Table III lattice
// under a hard evaluation budget, instead of sweeping it exhaustively.
func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	opts := suiteFlags(fs)
	query := fs.String("q", "",
		`goal query: goal *( "@" constraint ), e.g. "max-snr@power<=5e-6" or "min-power@accuracy>=0.98@area<=500"`)
	budget := fs.Int("budget", 0, "evaluation budget (0 = a tenth of the space)")
	probeRecords := fs.Int("probe-records", 0,
		"record count of a cheap probe fidelity for early pruning (0 = every probe at full fidelity)")
	csv := fs.String("csv", "", "write the discovered front as CSV to this path")
	progress := fs.Bool("progress", false, "per-round progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf(`search requires -q (e.g. -q "max-snr@power<=5e-6")`)
	}
	spec, err := search.ParseQuery(*query)
	if err != nil {
		return err
	}
	spec.Seed = opts.Seed
	scn, err := scenario.Lookup(opts.Scenario)
	if err != nil {
		return err
	}
	space := scn.Space(opts.NoiseSteps)
	size := space.Size()
	spec.MaxEvaluations = *budget
	if spec.MaxEvaluations <= 0 {
		spec.MaxEvaluations = max(size/10, 1)
	}

	suite := experiments.NewSuite(*opts)
	var fids []search.Fidelity
	if *probeRecords > 0 && *probeRecords != suite.Options().Records {
		po := *opts
		po.Records = *probeRecords
		fids = append(fids, search.Fidelity{Name: "probe", Eval: experiments.NewSuite(po).Engine()})
	}
	fids = append(fids, search.Fidelity{Name: "full", Eval: suite.Engine()})

	cfg := search.Config{Space: space, Spec: spec, Fidelities: fids}
	if *progress {
		cfg.OnProgress = func(p search.Progress) {
			fmt.Fprintf(os.Stderr, "\rsearch %d/%d @%s  front %d  hv %.3g   ",
				p.Evaluations, p.Budget, p.RungName, p.FrontSize, p.Hypervolume)
		}
	}
	out, err := search.Run(context.Background(), cfg)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	fmt.Printf("search %s: %d evaluations of a %d-point space (budget %d, %.1f%% of exhaustive)\n",
		spec.Query(), out.Evaluations, size, out.Budget, 100*float64(out.Evaluations)/float64(size))
	if out.Partial {
		reason := "budget exhausted before convergence"
		if out.Errors > 0 {
			reason = fmt.Sprintf("%d degraded rows", out.Errors)
		}
		fmt.Printf("  PARTIAL: %s; the front is a lower bound\n", reason)
	}
	fmt.Printf("  front: %d designs (hypervolume %.4g)\n", len(out.Front), out.Hypervolume)
	t := report.NewTable("design", "snr", "accuracy", "power", "area")
	for _, r := range out.Front {
		t.AddRow(r.Point.String(), fmt.Sprintf("%.1f dB", r.MeanSNRdB),
			fmt.Sprintf("%.3f", r.Accuracy), units.Format(r.TotalPower, "W"),
			fmt.Sprintf("%.0f", r.AreaCaps))
	}
	t.Render(os.Stdout)
	if out.HaveBest {
		fmt.Printf("\nanswer: %s\n", dse.Describe(out.Best))
		experiments.RenderBreakdown(os.Stdout, "power breakdown", out.Best.Power)
	} else {
		fmt.Println("\nno design in the explored region satisfies the constraints")
	}
	return writeCSV(*csv, func(f *os.File) error {
		return experiments.CSVResults(f, out.Front)
	})
}

// cmdScenarios lists the registered workloads: what -scenario (and the
// daemon's options.scenario field) may select, and what each evaluates.
func cmdScenarios(args []string) error {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	noiseSteps := fs.Int("noise-steps", 8, "noise resolution used to size each default space")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.NewTable("name", "architectures", "space", "recon", "description")
	for _, sc := range scenario.All() {
		name := sc.Name
		if name == scenario.DefaultName {
			name += " (default)"
		}
		t.AddRow(name,
			strings.Join(sc.ArchNames(), ","),
			fmt.Sprintf("%d points", sc.Space(*noiseSteps).Size()),
			sc.ReconMethod.String(),
			sc.Description)
	}
	t.Render(os.Stdout)
	return nil
}

// cmdRing previews a fleet's keyspace placement: the exact consistent-
// hash ring efficsensed builds from the same -peers list and vnode
// count, so an operator can check the split (and where a given cache
// key would land) before pointing traffic at it.
func cmdRing(args []string) error {
	fs := flag.NewFlagSet("ring", flag.ExitOnError)
	peerList := fs.String("peers", "", "fleet membership as name=addr,name=addr (same syntax as efficsensed -peers)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per member (0 = the daemon default)")
	key := fs.String("key", "", "optional cache key; prints its owning member")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peerList == "" {
		return fmt.Errorf("-peers is required")
	}
	members, err := cluster.ParseMembers(*peerList)
	if err != nil {
		return err
	}
	ring := cluster.NewRing(*vnodes, members)
	shares := ring.Shares()
	t := report.NewTable("member", "addr", "share")
	for _, m := range ring.Members() {
		t.AddRow(m.Name, m.Addr, fmt.Sprintf("%.1f%%", shares[m.Name]*100))
	}
	t.Render(os.Stdout)
	fmt.Printf("ring: %d members x %d vnodes\n", ring.Size(), ring.VNodes())
	if *key != "" {
		owner, ok := ring.Owner(*key)
		if !ok {
			return fmt.Errorf("empty ring")
		}
		fmt.Printf("key %q -> %s (%s)\n", *key, owner.Name, owner.Addr)
	}
	return nil
}

func cmdVariants(args []string) error {
	fs := flag.NewFlagSet("variants", flag.ExitOnError)
	opts := suiteFlags(fs)
	bits := fs.Int("bits", 8, "ADC resolution")
	noise := fs.Float64("noise", 6e-6, "LNA noise floor (V rms)")
	m := fs.Int("m", 150, "CS measurements per frame")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := experiments.NewSuite(*opts)
	experiments.RenderVariants(os.Stdout, suite.Variants(*bits, *noise, *m))
	return nil
}

func cmdRefine(args []string) error {
	fs := flag.NewFlagSet("refine", flag.ExitOnError)
	opts := suiteFlags(fs)
	arch := fs.String("arch", "cs", "architecture (scoped to the scenario's set)")
	bits := fs.Int("bits", 8, "ADC resolution")
	m := fs.Int("m", 150, "CS measurements per frame")
	iters := fs.Int("iters", 6, "bisection evaluations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scn, err := scenario.Lookup(opts.Scenario)
	if err != nil {
		return err
	}
	a, err := scn.ParseArch(*arch)
	if err != nil {
		return err
	}
	p := core.DesignPoint{Arch: a, Bits: *bits}
	if a != core.ArchBaseline {
		p.M = *m
	}
	suite := experiments.NewSuite(*opts)
	best, ok := dse.BisectNoiseFloor(suite.Engine(), p, dse.QualityAccuracy,
		opts.MinAccuracy, 1e-6, 20e-6, *iters)
	if !ok {
		fmt.Printf("no %s design meets accuracy >= %.2f even at vn = 1 µVrms\n",
			*arch, opts.MinAccuracy)
		return nil
	}
	fmt.Printf("refined optimum: %s\n", dse.Describe(best))
	experiments.RenderBreakdown(os.Stdout, "power breakdown", best.Power)
	return nil
}

func cmdFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	opts := suiteFlags(fs)
	bits := fs.Int("bits", 8, "ADC resolution for the sweep")
	csv := fs.String("csv", "", "write the sweep as CSV to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := experiments.NewSuite(*opts)
	pts := suite.Fig4(*bits)
	experiments.RenderFig4(os.Stdout, pts)
	return writeCSV(*csv, func(f *os.File) error { return experiments.CSVFig4(f, pts) })
}

// figSource abstracts a live suite and a loaded sweep for the figure
// subcommands.
type figSource interface {
	Fig7a() experiments.Fronts
	Fig7b() experiments.Fig7b
	Fig9() []experiments.Fig9Point
	Fig10(caps []float64) []experiments.Fig10Front
}

func cmdSuite(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	opts := suiteFlags(fs)
	csv := fs.String("csv", "", "write the underlying sweep as CSV to this path")
	from := fs.String("from", "", "re-render from a sweep CSV written earlier (skips re-evaluation; fig7a/7b/9/10 only)")
	capsFlag := fs.String("caps", "", "fig10 area caps, comma separated (Cu,min multiples)")
	progress := fs.Bool("progress", false, "rich progress: throughput, per-point time, cache hits, ETA")
	trace := fs.String("trace", "", "write a JSONL per-point sweep trace to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var source figSource
	var suite *experiments.Suite
	if *from != "" {
		f, err := os.Open(*from)
		if err != nil {
			return err
		}
		rs, err := experiments.LoadResults(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %d sweep results from %s\n", len(rs), *from)
		source = experiments.NewFigsFromResults(rs, opts.MinAccuracy)
	} else {
		var closeTrace func() error
		var err error
		suite, closeTrace, err = newSuite(opts, *progress, *trace)
		if err != nil {
			return err
		}
		defer func() {
			if err := closeTrace(); err == nil && *trace != "" {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *trace)
			}
			if *progress {
				printSweepSummary(suite)
			}
		}()
		source = suite
	}
	var caps []float64
	if *capsFlag != "" {
		for _, part := range strings.Split(*capsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("bad -caps entry %q: %w", part, err)
			}
			caps = append(caps, v)
		}
	}
	run := func(name string) error {
		switch name {
		case "fig7a":
			experiments.RenderFig7a(os.Stdout, source.Fig7a())
		case "fig7b":
			experiments.RenderFig7b(os.Stdout, source.Fig7b())
		case "fig8":
			if suite == nil {
				return fmt.Errorf("fig8 needs the full power breakdowns; run without -from")
			}
			if base, cs, ok := suite.Fig8(); ok {
				experiments.RenderFig8(os.Stdout, base, cs)
			} else {
				fmt.Println("fig8: no optima met the accuracy constraint; relax -min-accuracy")
			}
		case "fig9":
			experiments.RenderFig9(os.Stdout, source.Fig9())
		case "fig10":
			experiments.RenderFig10(os.Stdout, source.Fig10(caps))
		}
		return nil
	}
	switch cmd {
	case "sweep":
		if *csv == "" {
			return fmt.Errorf("sweep requires -csv")
		}
		if suite == nil {
			return fmt.Errorf("sweep re-evaluates; run without -from")
		}
		suite.SweepResults()
	case "all":
		if suite == nil {
			return fmt.Errorf("all re-evaluates; run without -from")
		}
		experiments.RenderFig4(os.Stdout, suite.Fig4(8))
		fmt.Println()
		for _, name := range []string{"fig7a", "fig7b", "fig8", "fig9", "fig10"} {
			if err := run(name); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		if err := run(cmd); err != nil {
			return err
		}
	}
	if suite == nil {
		return nil
	}
	return writeCSV(*csv, func(f *os.File) error {
		return experiments.CSVResults(f, suite.SweepResults())
	})
}
