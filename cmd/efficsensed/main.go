// Command efficsensed serves the EffiCSense pathfinding framework over
// HTTP: synchronous design-point evaluation, asynchronous design-space
// sweeps with SSE progress streams, goal-directed budget-capped
// searches (/v1/search), Pareto fronts and optima on demand, and
// Prometheus metrics — the paper's framework as a long-running service
// instead of a one-shot CLI.
//
// Usage:
//
//	efficsensed [-addr :8080] [-ops-addr 127.0.0.1:6060] [suite flags] [server flags]
//
// The suite flags (-seed, -records, …) set the server-wide defaults;
// requests override them per call. All sweep engines share one
// memoisation cache, so repeated or overlapping studies get warmer the
// longer the daemon runs.
//
// Fleet mode (-self name=addr, -peers list-or-@file) joins this daemon
// to a peer group: a consistent-hash ring splits the evaluation
// keyspace across nodes, cache misses for remotely-owned keys are
// fetched from their owner before being computed, job requests redirect
// to the node running them, and GET /v1/cluster reports ring and peer
// health. See the README's "Fleet mode" section.
//
// Logs are structured (log/slog, text format): every request line and
// sweep lifecycle event carries the request_id assigned or propagated
// by the X-Request-ID middleware, so one grep follows a request across
// handler and job goroutines. The optional -ops-addr flag opens a
// second, private listener with /debug/pprof/, /debug/vars and
// /debug/build; those endpoints never appear on the public address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"efficsense/internal/cluster"
	"efficsense/internal/dse"
	"efficsense/internal/experiments"
	"efficsense/internal/fault"
	"efficsense/internal/scenario"
	"efficsense/internal/serve"
	"efficsense/internal/wal"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintf(os.Stderr, "efficsensed: %v\n", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	addr         string
	opsAddr      string
	drain        time.Duration
	quiet        bool
	cacheEntries int

	retryAttempts int
	retryBase     time.Duration

	chaos     string
	chaosSeed int64

	walDir string

	self          string
	peerList      string
	peersInterval time.Duration
	clusterVNodes int

	tenantSubmitRate  float64
	tenantSubmitBurst int
	tenantEvalRate    float64
	tenantEvalBurst   int
	tenantMaxJobs     int
	tenantMaxQueue    int
	tenantWeights     string

	defaults experiments.Options
	manager  serve.ManagerConfig
}

// parseFlags builds the daemon configuration. Suite flags mirror the
// efficsense CLI so a study moves between the two without relabelling.
func parseFlags(args []string) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("efficsensed", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.opsAddr, "ops-addr", "",
		"private ops listener for pprof/expvar/build info (empty = disabled; keep it loopback-only)")
	fs.DurationVar(&cfg.drain, "drain", 30*time.Second, "shutdown grace period for running sweeps")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress request logging")

	fs.StringVar(&cfg.defaults.Scenario, "scenario", "",
		"default workload scenario (empty = "+scenario.DefaultName+"); GET /v1/scenarios lists the registry")
	fs.Int64Var(&cfg.defaults.Seed, "seed", 1, "default root seed")
	fs.IntVar(&cfg.defaults.Records, "records", 40, "default evaluation records (paper: 500)")
	fs.IntVar(&cfg.defaults.TrainRecords, "train-records", 120, "default detector training records")
	fs.IntVar(&cfg.defaults.NoiseSteps, "noise-steps", 8, "default LNA-noise grid resolution")
	fs.IntVar(&cfg.defaults.Workers, "workers", 0, "default sweep workers (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.defaults.BatchSize, "batch-size", 0,
		"cache-miss points per batched evaluator call (0 = engine default, 1 = per-point dispatch)")
	fs.IntVar(&cfg.defaults.Epochs, "epochs", 150, "default detector training epochs")
	fs.Float64Var(&cfg.defaults.MinAccuracy, "min-accuracy", 0.98, "default accuracy constraint")

	fs.IntVar(&cfg.manager.MaxConcurrentJobs, "max-jobs", 2, "concurrent sweep job slots before 429")
	fs.DurationVar(&cfg.manager.JobTTL, "job-ttl", 15*time.Minute, "how long finished jobs stay queryable")
	fs.IntVar(&cfg.manager.MaxSweepPoints, "max-points", 100000, "largest accepted sweep")
	fs.IntVar(&cfg.manager.MaxSearchEvaluations, "max-search-evals", 20000,
		"largest evaluation budget a /v1/search job may request")
	fs.DurationVar(&cfg.manager.EvalTimeout, "eval-timeout", 2*time.Minute, "cap on synchronous evaluation deadlines")
	fs.IntVar(&cfg.cacheEntries, "cache-entries", serve.DefaultCacheEntries,
		"bound on the shared evaluation cache (LRU eviction beyond it)")
	fs.IntVar(&cfg.retryAttempts, "retry", 0,
		"total attempts per design point before it degrades (0 or 1 = no retries)")
	fs.DurationVar(&cfg.retryBase, "retry-base", 5*time.Millisecond,
		"backoff before the first retry (doubles per retry, 30%% jitter)")
	fs.StringVar(&cfg.chaos, "chaos", "",
		"fault-injection spec, e.g. dse/evaluate=error:0.1,serve/sse-flush=latency:0.5:20ms (testing only)")
	fs.Int64Var(&cfg.chaosSeed, "chaos-seed", 1,
		"root seed for the -chaos schedule (replays a chaos run exactly)")
	fs.StringVar(&cfg.walDir, "wal-dir", "",
		"directory for the durable-jobs journal (empty = jobs are in-memory only); on startup the journal is replayed: finished jobs become queryable history, interrupted sweeps resume from their last journaled row")
	fs.StringVar(&cfg.self, "self", "",
		"this node's fleet identity as name=addr, e.g. node-a=http://10.0.0.1:8080 (empty = single-node mode)")
	fs.StringVar(&cfg.peerList, "peers", "",
		"fleet membership: a name=addr,name=addr list, or @/path/to/file (one name=addr per line, #-comments) polled for changes; requires -self")
	fs.DurationVar(&cfg.peersInterval, "peers-interval", 5*time.Second,
		"poll interval for a file-watched -peers membership")
	fs.IntVar(&cfg.clusterVNodes, "cluster-vnodes", 0,
		"virtual nodes per member on the consistent-hash ring (0 = default; every node must agree)")
	fs.Float64Var(&cfg.tenantSubmitRate, "tenant-submit-rate", 0,
		"per-tenant sustained job submissions per second (0 = unlimited)")
	fs.IntVar(&cfg.tenantSubmitBurst, "tenant-submit-burst", 1,
		"per-tenant job-submission burst capacity")
	fs.Float64Var(&cfg.tenantEvalRate, "tenant-eval-rate", 0,
		"per-tenant sustained synchronous-evaluation requests per second (0 = unlimited)")
	fs.IntVar(&cfg.tenantEvalBurst, "tenant-eval-burst", 1,
		"per-tenant synchronous-evaluation burst capacity")
	fs.IntVar(&cfg.tenantMaxJobs, "tenant-max-jobs", 0,
		"per-tenant concurrent job cap (0 = the global -max-jobs)")
	fs.IntVar(&cfg.tenantMaxQueue, "tenant-max-queue", 0,
		"per-tenant queued-job cap (0 = no queueing: reject at saturation)")
	fs.StringVar(&cfg.tenantWeights, "tenant-weights", "",
		"per-tenant fair-share weights, e.g. team-a=3,team-b=1 (unlisted tenants weigh 1)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(fs.Output(), "efficsensed: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return nil, errors.New("unexpected positional arguments")
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(fs.Output(), "efficsensed: %v\n", err)
		fs.Usage()
		return nil, err
	}
	return cfg, nil
}

// validate rejects server-shaping flag values that would silently
// produce a degenerate daemon (zero job slots, instantly evicted jobs,
// un-runnable deadlines, a cache that can hold nothing) instead of
// letting defaulting or runtime behaviour paper over them.
func (cfg *config) validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{cfg.drain > 0, fmt.Sprintf("-drain must be positive, got %s", cfg.drain)},
		{cfg.manager.MaxConcurrentJobs > 0, fmt.Sprintf("-max-jobs must be positive, got %d", cfg.manager.MaxConcurrentJobs)},
		{cfg.manager.JobTTL > 0, fmt.Sprintf("-job-ttl must be positive, got %s", cfg.manager.JobTTL)},
		{cfg.manager.MaxSweepPoints > 0, fmt.Sprintf("-max-points must be positive, got %d", cfg.manager.MaxSweepPoints)},
		{cfg.manager.MaxSearchEvaluations > 0, fmt.Sprintf("-max-search-evals must be positive, got %d", cfg.manager.MaxSearchEvaluations)},
		{cfg.manager.EvalTimeout > 0, fmt.Sprintf("-eval-timeout must be positive, got %s", cfg.manager.EvalTimeout)},
		{cfg.cacheEntries > 0, fmt.Sprintf("-cache-entries must be positive, got %d", cfg.cacheEntries)},
		{cfg.defaults.Workers >= 0, fmt.Sprintf("-workers must be non-negative, got %d", cfg.defaults.Workers)},
		{cfg.defaults.BatchSize >= 0, fmt.Sprintf("-batch-size must be non-negative, got %d", cfg.defaults.BatchSize)},
		{cfg.retryAttempts >= 0, fmt.Sprintf("-retry must be non-negative, got %d", cfg.retryAttempts)},
		{cfg.retryBase > 0, fmt.Sprintf("-retry-base must be positive, got %s", cfg.retryBase)},
		{cfg.tenantSubmitRate >= 0, fmt.Sprintf("-tenant-submit-rate must be non-negative, got %g", cfg.tenantSubmitRate)},
		{cfg.tenantSubmitBurst > 0, fmt.Sprintf("-tenant-submit-burst must be positive, got %d", cfg.tenantSubmitBurst)},
		{cfg.tenantEvalRate >= 0, fmt.Sprintf("-tenant-eval-rate must be non-negative, got %g", cfg.tenantEvalRate)},
		{cfg.tenantEvalBurst > 0, fmt.Sprintf("-tenant-eval-burst must be positive, got %d", cfg.tenantEvalBurst)},
		{cfg.tenantMaxJobs >= 0, fmt.Sprintf("-tenant-max-jobs must be non-negative, got %d", cfg.tenantMaxJobs)},
		{cfg.tenantMaxQueue >= 0, fmt.Sprintf("-tenant-max-queue must be non-negative, got %d", cfg.tenantMaxQueue)},
		{cfg.clusterVNodes >= 0, fmt.Sprintf("-cluster-vnodes must be non-negative, got %d", cfg.clusterVNodes)},
		{cfg.peersInterval > 0, fmt.Sprintf("-peers-interval must be positive, got %s", cfg.peersInterval)},
		{cfg.peerList == "" || cfg.self != "", "-peers requires -self"},
	}
	for _, c := range checks {
		if !c.ok {
			return errors.New(c.msg)
		}
	}
	if _, err := scenario.Lookup(cfg.defaults.Scenario); err != nil {
		return fmt.Errorf("-scenario: %w", err)
	}
	if _, err := parseTenantWeights(cfg.tenantWeights); err != nil {
		return fmt.Errorf("-tenant-weights: %w", err)
	}
	if cfg.chaos != "" {
		if _, err := fault.ParseSpec(cfg.chaos, cfg.chaosSeed); err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
	}
	if cfg.self != "" {
		if _, err := cluster.ParseMember(cfg.self); err != nil {
			return fmt.Errorf("-self: %w", err)
		}
		if cfg.peerList != "" && !strings.HasPrefix(cfg.peerList, "@") {
			if _, err := cluster.ParseMembers(cfg.peerList); err != nil {
				return fmt.Errorf("-peers: %w", err)
			}
		}
	}
	return nil
}

// parseTenantWeights parses "name=weight,name=weight" into per-tenant
// fair-share weights.
func parseTenantWeights(spec string) (map[string]int, error) {
	out := make(map[string]int)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant %q needs a positive integer weight, got %q", name, val)
		}
		out[name] = w
	}
	return out, nil
}

// tenancy assembles the per-tenant policy from the flags: every tenant
// gets the default limits, tenants named in -tenant-weights override the
// fair-share weight only.
func (cfg *config) tenancy() serve.TenantPolicy {
	def := serve.TenantLimits{
		MaxConcurrentJobs: cfg.tenantMaxJobs,
		MaxQueuedJobs:     cfg.tenantMaxQueue,
		SubmitRate:        cfg.tenantSubmitRate,
		SubmitBurst:       cfg.tenantSubmitBurst,
		EvalRate:          cfg.tenantEvalRate,
		EvalBurst:         cfg.tenantEvalBurst,
	}
	policy := serve.TenantPolicy{Default: def}
	weights, _ := parseTenantWeights(cfg.tenantWeights) // validated at startup
	for name, w := range weights {
		limits := def
		limits.Weight = w
		if policy.Tenants == nil {
			policy.Tenants = make(map[string]serve.TenantLimits)
		}
		policy.Tenants[name] = limits
	}
	return policy
}

// run brings the daemon up and blocks until ctx is cancelled (SIGINT /
// SIGTERM in production), then drains: running sweeps get cfg.drain to
// finish before being cancelled, and the HTTP server closes after the
// job manager so SSE streams flush their terminal events. ready, when
// set, receives the bound public and ops addresses once the listeners
// are up (tests bind ":0"; opsAddr is "" when -ops-addr is unset).
func run(ctx context.Context, cfg *config, ready func(addr, opsAddr string)) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("app", "efficsensed")
	srvLog := logger
	if cfg.quiet {
		srvLog = nil
	}

	if cfg.retryAttempts >= 2 {
		cfg.defaults.Retry = &dse.RetryPolicy{
			MaxAttempts: cfg.retryAttempts,
			BaseDelay:   cfg.retryBase,
			Jitter:      0.3,
		}
	}
	if cfg.chaos != "" {
		if err := fault.EnableSpec(cfg.chaos, cfg.chaosSeed); err != nil {
			return fmt.Errorf("arming -chaos spec: %w", err)
		}
		defer fault.Reset()
		logger.Warn("fault injection ARMED — this daemon will misbehave on purpose",
			"spec", cfg.chaos, "chaos_seed", cfg.chaosSeed)
	}

	engines := serve.NewSuiteEngines(cfg.cacheEntries)
	mcfg := cfg.manager
	mcfg.Defaults = cfg.defaults
	mcfg.Engines = engines.Engine
	mcfg.Cache = engines.Cache()
	mcfg.Log = srvLog
	mcfg.Tenancy = cfg.tenancy()
	if cfg.self != "" {
		selfM, err := cluster.ParseMember(cfg.self) // validated at startup
		if err != nil {
			return fmt.Errorf("-self: %w", err)
		}
		peers, err := cluster.NewPeers(cluster.Config{
			Self:   selfM,
			VNodes: cfg.clusterVNodes,
			Seed:   cfg.defaults.Seed,
		})
		if err != nil {
			return err
		}
		if file, ok := strings.CutPrefix(cfg.peerList, "@"); ok {
			members, err := cluster.LoadMembersFile(file)
			if err != nil {
				return fmt.Errorf("-peers: %w", err)
			}
			peers.SetMembers(members)
			go peers.WatchFile(ctx, file, cfg.peersInterval, func(err error) {
				logger.Warn("fleet membership reload failed; keeping previous ring", "error", err.Error())
			})
		} else if cfg.peerList != "" {
			members, err := cluster.ParseMembers(cfg.peerList)
			if err != nil {
				return fmt.Errorf("-peers: %w", err)
			}
			peers.SetMembers(members)
		} else {
			peers.SetMembers(nil) // fleet of one: ring = {self}
		}
		engines.UseCluster(peers)
		mcfg.Cluster = peers
		logger.Info("fleet mode enabled",
			"self", selfM.Name, "members", len(peers.Members()),
			"vnodes", peers.Status().VNodes)
	}
	var walRecords []wal.Record
	if cfg.walDir != "" {
		walLog, records, err := wal.Open(cfg.walDir)
		if err != nil {
			return fmt.Errorf("opening wal: %w", err)
		}
		mcfg.WAL = walLog // the manager owns it: Shutdown compacts and closes
		walRecords = records
		logger.Info("durable jobs enabled",
			"wal", walLog.Path(), "records", len(records),
			"dropped", walLog.Stats().Dropped)
	}
	mgr, err := serve.NewManager(mcfg)
	if err != nil {
		return err
	}
	if mcfg.WAL != nil {
		if err := mgr.Recover(walRecords); err != nil {
			return fmt.Errorf("replaying wal: %w", err)
		}
		c := mgr.Counters()
		if c.WALReplayedJobs+c.WALResumedJobs > 0 {
			logger.Info("journal replayed",
				"history_jobs", c.WALReplayedJobs,
				"resumed_jobs", c.WALResumedJobs,
				"restored_rows", c.WALReplayedRows)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", cfg.addr, err)
	}
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"seed", cfg.defaults.Seed,
		"records", cfg.defaults.Records,
		"noise_steps", cfg.defaults.NoiseSteps)

	// The ops listener is separate from the public mux by construction:
	// pprof and expvar never register on the API server.
	var opsSrv *http.Server
	opsAddr := ""
	opsErrc := make(chan error, 1)
	if cfg.opsAddr != "" {
		opsLn, err := net.Listen("tcp", cfg.opsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("listening on ops address %s: %w", cfg.opsAddr, err)
		}
		opsAddr = opsLn.Addr().String()
		logger.Info("ops listener up", "ops_addr", opsAddr)
		opsSrv = &http.Server{Handler: serve.NewOpsHandler()}
		go func() {
			if err := opsSrv.Serve(opsLn); !errors.Is(err, http.ErrServerClosed) {
				opsErrc <- err
				return
			}
			opsErrc <- nil
		}()
	}
	if ready != nil {
		ready(ln.Addr().String(), opsAddr)
	}

	srv := &http.Server{Handler: serve.NewServer(mgr, srvLog)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		if opsSrv != nil {
			_ = opsSrv.Close()
		}
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down: draining sweeps", "grace", cfg.drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		logger.Warn("drain deadline hit; running sweeps were cancelled")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		_ = srv.Close()
	}
	<-errc
	if opsSrv != nil {
		_ = opsSrv.Close()
		<-opsErrc
	}
	logger.Info("bye")
	return nil
}
