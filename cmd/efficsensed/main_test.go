package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"efficsense/internal/serve"
)

func TestParseFlagsDefaultsAndOverrides(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.drain != 30*time.Second || cfg.quiet {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.defaults.Records != 40 || cfg.defaults.MinAccuracy != 0.98 {
		t.Fatalf("suite defaults: %+v", cfg.defaults)
	}
	if cfg.manager.MaxConcurrentJobs != 2 || cfg.manager.JobTTL != 15*time.Minute {
		t.Fatalf("manager defaults: %+v", cfg.manager)
	}
	if cfg.manager.MaxSearchEvaluations != 20000 {
		t.Fatalf("search budget default: got %d, want 20000", cfg.manager.MaxSearchEvaluations)
	}
	if cfg.cacheEntries != serve.DefaultCacheEntries {
		t.Fatalf("cache default: got %d, want %d", cfg.cacheEntries, serve.DefaultCacheEntries)
	}

	cfg, err = parseFlags([]string{
		"-addr", "127.0.0.1:0", "-quiet", "-drain", "5s",
		"-seed", "3", "-records", "9", "-min-accuracy", "0.5",
		"-max-jobs", "4", "-job-ttl", "1m", "-max-points", "50", "-eval-timeout", "10s",
		"-cache-entries", "512",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:0" || !cfg.quiet || cfg.drain != 5*time.Second {
		t.Fatalf("overrides: %+v", cfg)
	}
	if cfg.defaults.Seed != 3 || cfg.defaults.Records != 9 || cfg.defaults.MinAccuracy != 0.5 {
		t.Fatalf("suite overrides: %+v", cfg.defaults)
	}
	if cfg.manager.MaxConcurrentJobs != 4 || cfg.manager.JobTTL != time.Minute ||
		cfg.manager.MaxSweepPoints != 50 || cfg.manager.EvalTimeout != 10*time.Second {
		t.Fatalf("manager overrides: %+v", cfg.manager)
	}
	if cfg.cacheEntries != 512 {
		t.Fatalf("cache override: got %d, want 512", cfg.cacheEntries)
	}

	cfg, err = parseFlags([]string{
		"-retry", "3", "-retry-base", "2ms",
		"-chaos", "dse/evaluate=error:0.25,serve/sse-flush=latency:0.5:10ms", "-chaos-seed", "42",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.retryAttempts != 3 || cfg.retryBase != 2*time.Millisecond {
		t.Fatalf("retry overrides: %+v", cfg)
	}
	if cfg.chaosSeed != 42 || cfg.chaos == "" {
		t.Fatalf("chaos overrides: %+v", cfg)
	}
}

// TestParseFlagsRejectsDegenerateValues checks the validation sweep:
// server-shaping flags that would yield a daemon that accepts no work,
// forgets jobs instantly, or caches nothing must fail parse, not limp.
func TestParseFlagsRejectsDegenerateValues(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero max-jobs", []string{"-max-jobs", "0"}, "-max-jobs"},
		{"negative max-jobs", []string{"-max-jobs", "-1"}, "-max-jobs"},
		{"zero job-ttl", []string{"-job-ttl", "0s"}, "-job-ttl"},
		{"negative job-ttl", []string{"-job-ttl", "-1m"}, "-job-ttl"},
		{"zero eval-timeout", []string{"-eval-timeout", "0s"}, "-eval-timeout"},
		{"negative drain", []string{"-drain", "-5s"}, "-drain"},
		{"zero drain", []string{"-drain", "0s"}, "-drain"},
		{"zero max-points", []string{"-max-points", "0"}, "-max-points"},
		{"zero max-search-evals", []string{"-max-search-evals", "0"}, "-max-search-evals"},
		{"negative max-search-evals", []string{"-max-search-evals", "-5"}, "-max-search-evals"},
		{"zero cache-entries", []string{"-cache-entries", "0"}, "-cache-entries"},
		{"negative cache-entries", []string{"-cache-entries", "-8"}, "-cache-entries"},
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"negative retry", []string{"-retry", "-1"}, "-retry"},
		{"zero retry-base", []string{"-retry-base", "0s"}, "-retry-base"},
		{"chaos bad kind", []string{"-chaos", "dse/evaluate=explode"}, "-chaos"},
		{"chaos latency without duration", []string{"-chaos", "serve/sse-flush=latency:0.5"}, "-chaos"},
		{"chaos bad probability", []string{"-chaos", "dse/evaluate=error:2"}, "-chaos"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted a degenerate value", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.want)
			}
		})
	}
}

func TestParseFlagsRejectsJunk(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag should error")
	}
	if _, err := parseFlags([]string{"positional"}); err == nil {
		t.Fatal("positional arguments should error")
	}
}

// TestDaemonServesAndShutsDown boots the daemon on an ephemeral port,
// exercises the endpoints that need no trained suite, and checks the
// signal-driven shutdown path returns cleanly.
func TestDaemonServesAndShutsDown(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, cfg, func(addr, opsAddr string) {
			if opsAddr != "" {
				t.Errorf("ops listener started without -ops-addr: %q", opsAddr)
			}
			addrc <- addr
		})
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz %d %q", resp.StatusCode, h.Status)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "efficsense_uptime_seconds") {
		t.Fatalf("metrics exposition missing uptime gauge:\n%s", buf[:n])
	}

	// A malformed sweep is rejected without touching a suite.
	resp, err = http.Post(base+"/v1/sweeps", "application/json",
		strings.NewReader(`{"space":{"architectures":["warp"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sweep status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

// TestOpsListenerServesPprofPrivately boots the daemon with -ops-addr
// and checks the debug surface lives only on the private listener: the
// ops address serves /debug/pprof/, /debug/vars and /debug/build, and
// the public API address 404s all of them.
func TestOpsListenerServesPprofPrivately(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-ops-addr", "127.0.0.1:0", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type addrs struct{ api, ops string }
	addrc := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, cfg, func(addr, opsAddr string) { addrc <- addrs{addr, opsAddr} })
	}()
	var a addrs
	select {
	case a = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}
	if a.ops == "" {
		t.Fatal("ops listener did not start despite -ops-addr")
	}

	get := func(base, path string) int {
		t.Helper()
		resp, err := http.Get("http://" + base + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", base, path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/debug/build"} {
		if code := get(a.ops, path); code != http.StatusOK {
			t.Errorf("ops %s: got %d, want 200", path, code)
		}
		if code := get(a.api, path); code != http.StatusNotFound {
			t.Errorf("public %s: got %d, want 404 (debug surface leaked)", path, code)
		}
	}

	resp, err := http.Get("http://" + a.ops + "/debug/build")
	if err != nil {
		t.Fatal(err)
	}
	var bi struct {
		GoVersion string `json:"go_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("build info go_version %q", bi.GoVersion)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never shut down")
	}
}
