// Command eeggen exports the Bonn-substitute EEG dataset as CSV files so
// the synthetic records can be inspected or consumed by external tooling
// (plotting, alternative detectors). One file is written per record plus a
// manifest with the ground-truth labels.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"efficsense/internal/eeg"
	"efficsense/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eeggen: ")
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// config is the parsed command line.
type config struct {
	records   int
	seed      int64
	artifacts bool
	native    bool
	out       string
}

// parseFlags builds the export configuration, rejecting values that
// would synthesize nothing or write nowhere.
func parseFlags(args []string) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("eeggen", flag.ContinueOnError)
	fs.IntVar(&cfg.records, "records", 10, "number of records to synthesize")
	fs.Int64Var(&cfg.seed, "seed", 1, "dataset seed")
	fs.BoolVar(&cfg.artifacts, "artifacts", false, "add ocular/EMG/mains artefacts")
	fs.BoolVar(&cfg.native, "native", false, "emit at the 173.61 Hz native rate (skip Step 4 upsampling)")
	fs.StringVar(&cfg.out, "out", "eeg-out", "output directory")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(fs.Output(), "eeggen: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return nil, errors.New("unexpected positional arguments")
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(fs.Output(), "eeggen: %v\n", err)
		fs.Usage()
		return nil, err
	}
	return cfg, nil
}

func (cfg *config) validate() error {
	switch {
	case cfg.records <= 0:
		return fmt.Errorf("-records must be positive, got %d", cfg.records)
	case cfg.out == "":
		return errors.New("-out must name an output directory")
	}
	return nil
}

// run synthesizes the dataset and writes the per-record CSVs plus the
// manifest; status output goes to stdout (a buffer in tests).
func run(cfg *config, stdout io.Writer) error {
	ecfg := eeg.DefaultConfig(cfg.seed, cfg.records)
	ecfg.Artifacts = cfg.artifacts
	ecfg.Upsample = !cfg.native
	ds := eeg.Synthesize(ecfg)

	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		return err
	}
	manifest, err := os.Create(filepath.Join(cfg.out, "manifest.csv"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	rows := make([][]interface{}, 0, len(ds.Records))
	for _, r := range ds.Records {
		name := fmt.Sprintf("record_%03d_%s.csv", r.ID, r.Label)
		if err := writeRecord(filepath.Join(cfg.out, name), r); err != nil {
			return err
		}
		rows = append(rows, []interface{}{r.ID, r.Label.String(), name, r.Rate, len(r.Samples)})
	}
	if err := report.CSV(manifest, []string{"id", "label", "file", "rate_hz", "samples"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d records @ %.2f Hz to %s\n", len(ds.Records), ds.Rate, cfg.out)
	return nil
}

func writeRecord(path string, r eeg.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows := make([][]interface{}, len(r.Samples))
	for i, v := range r.Samples {
		rows[i] = []interface{}{float64(i) / r.Rate, v}
	}
	return report.CSV(f, []string{"t_s", "v"}, rows)
}
