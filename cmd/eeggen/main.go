// Command eeggen exports the Bonn-substitute EEG dataset as CSV files so
// the synthetic records can be inspected or consumed by external tooling
// (plotting, alternative detectors). One file is written per record plus a
// manifest with the ground-truth labels.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"efficsense/internal/eeg"
	"efficsense/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eeggen: ")
	records := flag.Int("records", 10, "number of records to synthesize")
	seed := flag.Int64("seed", 1, "dataset seed")
	artifacts := flag.Bool("artifacts", false, "add ocular/EMG/mains artefacts")
	native := flag.Bool("native", false, "emit at the 173.61 Hz native rate (skip Step 4 upsampling)")
	out := flag.String("out", "eeg-out", "output directory")
	flag.Parse()

	cfg := eeg.DefaultConfig(*seed, *records)
	cfg.Artifacts = *artifacts
	cfg.Upsample = !*native
	ds := eeg.Synthesize(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	manifest, err := os.Create(filepath.Join(*out, "manifest.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer manifest.Close()
	rows := make([][]interface{}, 0, len(ds.Records))
	for _, r := range ds.Records {
		name := fmt.Sprintf("record_%03d_%s.csv", r.ID, r.Label)
		if err := writeRecord(filepath.Join(*out, name), r); err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []interface{}{r.ID, r.Label.String(), name, r.Rate, len(r.Samples)})
	}
	if err := report.CSV(manifest, []string{"id", "label", "file", "rate_hz", "samples"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records @ %.2f Hz to %s\n", len(ds.Records), ds.Rate, *out)
}

func writeRecord(path string, r eeg.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows := make([][]interface{}, len(r.Samples))
	for i, v := range r.Samples {
		rows[i] = []interface{}{float64(i) / r.Rate, v}
	}
	return report.CSV(f, []string{"t_s", "v"}, rows)
}
