package main

import (
	"bytes"
	"crypto/sha256"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestParseFlagsDefaultsAndOverrides(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.records != 10 || cfg.seed != 1 || cfg.artifacts || cfg.native || cfg.out != "eeg-out" {
		t.Fatalf("defaults: %+v", cfg)
	}

	cfg, err = parseFlags([]string{
		"-records", "3", "-seed", "7", "-artifacts", "-native", "-out", "elsewhere",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.records != 3 || cfg.seed != 7 || !cfg.artifacts || !cfg.native || cfg.out != "elsewhere" {
		t.Fatalf("overrides: %+v", cfg)
	}
}

func TestParseFlagsRejectsDegenerateValues(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero records", []string{"-records", "0"}, "-records"},
		{"negative records", []string{"-records", "-4"}, "-records"},
		{"empty out", []string{"-out", ""}, "-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted a degenerate value", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.want)
			}
		})
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag should error")
	}
	if _, err := parseFlags([]string{"positional"}); err == nil {
		t.Fatal("positional arguments should error")
	}
}

// exportDigest runs one export and reduces the whole output tree to a
// filename → content-hash map plus the status line.
func exportDigest(t *testing.T, args ...string) (map[string][32]byte, string) {
	t.Helper()
	dir := t.TempDir()
	cfg, err := parseFlags(append(args, "-out", dir))
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run(cfg, &stdout); err != nil {
		t.Fatal(err)
	}
	sums := make(map[string][32]byte)
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		sums[rel] = sha256.Sum256(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sums, stdout.String()
}

// TestExportIsSeedDeterministic is the golden-output test: a fixed seed
// must reproduce the export byte for byte, and a different seed must
// not.
func TestExportIsSeedDeterministic(t *testing.T) {
	a, _ := exportDigest(t, "-records", "4", "-seed", "3")
	b, _ := exportDigest(t, "-records", "4", "-seed", "3")
	if len(a) != len(b) {
		t.Fatalf("reruns wrote different file sets: %d vs %d files", len(a), len(b))
	}
	for name, sum := range a {
		if b[name] != sum {
			t.Fatalf("file %s differs between same-seed runs", name)
		}
	}

	c, _ := exportDigest(t, "-records", "4", "-seed", "4")
	diff := false
	for name, sum := range a {
		if other, ok := c[name]; !ok || other != sum {
			diff = true
			break
		}
	}
	if !diff && len(a) == len(c) {
		t.Fatal("distinct seeds produced identical exports")
	}
}

// TestExportLayoutAndManifest checks the output contract: one CSV per
// record named for its ID and label, a manifest listing exactly those
// files, and the status line reporting the record count.
func TestExportLayoutAndManifest(t *testing.T) {
	dir := t.TempDir()
	cfg, err := parseFlags([]string{"-records", "3", "-seed", "2", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run(cfg, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "wrote 3 records") {
		t.Fatalf("status line: %q", stdout.String())
	}

	manifest, err := os.ReadFile(filepath.Join(dir, "manifest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	if len(lines) != 4 { // header + 3 records
		t.Fatalf("manifest rows: %d\n%s", len(lines), manifest)
	}
	if lines[0] != "id,label,file,rate_hz,samples" {
		t.Fatalf("manifest header: %q", lines[0])
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	sort.Strings(files)
	if len(files) != 4 {
		t.Fatalf("output files: %v", files)
	}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != 5 {
			t.Fatalf("manifest row %q", line)
		}
		name := cells[2]
		if !strings.HasPrefix(name, "record_") || !strings.HasSuffix(name, ".csv") {
			t.Fatalf("manifest names unexpected file %q", name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("manifest lists a missing file: %v", err)
		}
		if !strings.HasPrefix(string(data), "t_s,v\n") {
			t.Fatalf("record %s header: %q", name, string(data[:10]))
		}
	}
}
