module efficsense

go 1.22
