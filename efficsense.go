// Package efficsense is a pure-Go reproduction of "EffiCSense: an
// Architectural Pathfinding Framework for Energy-Constrained Sensor
// Applications" (Van Assche, Helsen, Gielen — DATE 2022).
//
// EffiCSense couples behavioural models of a mixed-signal sensor front-end
// (LNA, sample & hold, SAR ADC, passive charge-sharing compressive-sensing
// encoder, transmitter) with analytical power-bound models of the same
// blocks, so a single design-space sweep yields signal quality,
// application accuracy, power and capacitor area simultaneously.
//
// This package is the public facade: it re-exports the library's stable
// surface so downstream users never import internal packages directly.
//
//	suite := efficsense.NewSuite(efficsense.SuiteOptions{Seed: 1, Records: 40})
//	fig7b := suite.Fig7b()
//	fmt.Printf("CS saves %.1fx\n", fig7b.PowerSavingsX)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package efficsense

import (
	"context"
	"io"

	"efficsense/internal/cache"
	"efficsense/internal/chain"
	"efficsense/internal/classify"
	"efficsense/internal/cluster"
	"efficsense/internal/core"
	"efficsense/internal/dse"
	"efficsense/internal/dsp"
	"efficsense/internal/eeg"
	"efficsense/internal/experiments"
	"efficsense/internal/obs"
	"efficsense/internal/power"
	"efficsense/internal/scenario"
	"efficsense/internal/search"
	"efficsense/internal/tech"
	"efficsense/internal/wal"
)

// Technology and system parameters (paper Table III).
type (
	// TechParams are the technology constants (C_logic, gm/Id, C_u,min,
	// mismatch, leakage, E_bit, V_T, ...).
	TechParams = tech.Params
	// SystemParams are the application constants (BW_in, V_DD, f_sample
	// ratio, ...).
	SystemParams = tech.System
)

// GPDK045 returns the paper's extracted gpdk045 technology parameters.
func GPDK045() TechParams { return tech.GPDK045() }

// DefaultSystem returns the paper's Table III application constants.
func DefaultSystem() SystemParams { return tech.DefaultSystem() }

// Design-space types (the paper's Fig 1 architectures and Table III axes).
type (
	// Architecture selects the baseline (Fig 1a) or CS (Fig 1b) system.
	Architecture = core.Architecture
	// DesignPoint is one configuration of the search space.
	DesignPoint = core.DesignPoint
	// Result carries SNR, accuracy, power breakdown and area for a point.
	Result = core.Result
	// SineResult is a single-tone characterisation outcome (Fig 4).
	SineResult = core.SineResult
)

// Architecture values: the paper's two systems plus the digital and
// active analog CS variants its Section III compares against.
const (
	ArchBaseline  = core.ArchBaseline
	ArchCS        = core.ArchCS
	ArchCSDigital = core.ArchCSDigital
	ArchCSActive  = core.ArchCSActive
)

// Evaluation framework (paper Fig 2 flow).
type (
	// EvaluatorConfig assembles an Evaluator.
	EvaluatorConfig = core.Config
	// Evaluator scores design points on a dataset.
	Evaluator = core.Evaluator
)

// NewEvaluator builds an evaluator from a config.
func NewEvaluator(cfg EvaluatorConfig) (*Evaluator, error) { return core.NewEvaluator(cfg) }

// EvaluateSine characterises a design point with a sine stimulus (Fig 4).
func EvaluateSine(cfg EvaluatorConfig, p DesignPoint, freq, seconds float64) SineResult {
	return core.EvaluateSine(cfg, p, freq, seconds)
}

// Behavioural chains (Fig 1 wiring) for users who want waveform access.
type (
	// ChainCommon holds the shared chain parameters.
	ChainCommon = chain.Common
	// BaselineChain is the classical acquisition chain.
	BaselineChain = chain.Baseline
	// CSChainConfig parameterises the compressive-sensing chain.
	CSChainConfig = chain.CSConfig
	// CSChain is the analog compressive-sensing chain.
	CSChain = chain.CSChain
	// ChainOutput is a processed waveform with power and area.
	ChainOutput = chain.Output
)

// NewBaselineChain wires the Fig 1a system.
func NewBaselineChain(cfg ChainCommon) *BaselineChain { return chain.NewBaseline(cfg) }

// NewCSChain wires the Fig 1b system.
func NewCSChain(cfg CSChainConfig) *CSChain { return chain.NewCS(cfg) }

// Variant chains (digital and active analog compressive sensing).
type (
	// DigitalCSChain is the Nyquist-ADC + MAC compression variant.
	DigitalCSChain = chain.DigitalCS
	// ActiveCSChain is the OTA-integrator variant.
	ActiveCSChain = chain.ActiveCS
)

// NewDigitalCSChain wires the digital CS variant.
func NewDigitalCSChain(cfg CSChainConfig) *DigitalCSChain { return chain.NewDigitalCS(cfg) }

// NewActiveCSChain wires the active analog CS variant.
func NewActiveCSChain(cfg CSChainConfig) *ActiveCSChain { return chain.NewActiveCS(cfg) }

// ChainReference returns the band-limited ideal acquisition both chains
// are scored against.
func ChainReference(cfg ChainCommon, input []float64, inputRate float64) []float64 {
	return chain.Reference(cfg, input, inputRate)
}

// EEG dataset substrate (paper Step 4).
type (
	// EEGConfig parameterises the Bonn-like synthesiser.
	EEGConfig = eeg.Config
	// EEGDataset is a labelled record collection.
	EEGDataset = eeg.Dataset
	// EEGRecord is one labelled waveform.
	EEGRecord = eeg.Record
	// EEGClass labels a record.
	EEGClass = eeg.Class
)

// EEG class values.
const (
	Interictal = eeg.Interictal
	Ictal      = eeg.Ictal
)

// DefaultEEGConfig returns the tuned synthesiser configuration.
func DefaultEEGConfig(seed int64, records int) EEGConfig { return eeg.DefaultConfig(seed, records) }

// SynthesizeEEG builds a Bonn-like dataset.
func SynthesizeEEG(cfg EEGConfig) *EEGDataset { return eeg.Synthesize(cfg) }

// Seizure detector (substitute for the paper's network [20]).
type (
	// Detector is the trained accuracy metric.
	Detector = classify.Detector
	// DetectorConfig controls training.
	DetectorConfig = classify.DetectorConfig
	// TrainOptions are the optimiser options.
	TrainOptions = classify.TrainOptions
	// Confusion is a binary confusion matrix.
	Confusion = classify.Confusion
)

// TrainDetector fits a detector on a labelled dataset.
func TrainDetector(ds *EEGDataset, cfg DetectorConfig) *Detector {
	return classify.TrainDetector(ds, cfg)
}

// Design-space exploration (paper Fig 7–10 machinery).
type (
	// Space is a rectangular design-space grid.
	Space = dse.Space
	// Sweep is the parallel sweep engine: context-aware cancellation,
	// per-point memoisation, panic recovery and metrics. Construct with
	// NewSweep.
	Sweep = dse.Sweep
	// SweepOption configures a Sweep at construction (WithWorkers,
	// WithBatchSize, WithProgress, WithCache, WithTrace,
	// WithEvaluatorID, WithRetry).
	SweepOption = dse.Option
	// PointEvaluator scores one design point (implemented by
	// *Evaluator).
	//
	// Deprecated as a construction target: prefer evaluators that also
	// implement BatchEvaluator (as *Evaluator does) so NewSweep can
	// dispatch cache misses in work-sharing batches. A bare
	// PointEvaluator still works and keeps the historical per-point
	// dispatch.
	PointEvaluator = dse.PointEvaluator
	// BatchEvaluator scores several design points in one call — the
	// batch-first evaluation contract. NewSweep prefers it over
	// per-point Evaluate whenever the evaluator implements it, and a
	// *Sweep is itself a BatchEvaluator, so engines compose.
	BatchEvaluator = dse.BatchEvaluator
	// SweepCache memoises design-point evaluations across sweeps.
	SweepCache = dse.Cache
	// MemoryCache is the unbounded in-memory SweepCache with hit/miss
	// accounting — right for one-shot CLI runs.
	MemoryCache = dse.MemoryCache
	// LRUCache is the bounded sharded SweepCache with LRU eviction and
	// singleflight de-duplication — right for long-running servers.
	LRUCache = cache.LRU
	// CacheStats is an LRUCache accounting snapshot.
	CacheStats = cache.Stats
	// SweepMetrics is a snapshot of a sweep engine's counters, including
	// the evaluation-duration histogram and its p50/p90/p99 quantiles.
	SweepMetrics = dse.Snapshot
	// EvalHistogram is the fixed-bucket evaluation-duration histogram
	// snapshot carried by SweepMetrics; it renders Prometheus exposition
	// and estimates arbitrary quantiles.
	EvalHistogram = obs.Snapshot
	// SweepEvent is one structured per-point engine observation
	// (WithEventHook, (*Sweep).RunWithHook).
	SweepEvent = dse.Event
	// Quality is a goal-function selector (paper Step 5).
	Quality = dse.Quality
	// RetryPolicy bounds per-point retries with exponential backoff and
	// seeded jitter (WithRetry); only error-carrying results its
	// Retryable predicate accepts are re-attempted.
	RetryPolicy = dse.RetryPolicy
)

// DefaultBatchSize is the batch size NewSweep uses when WithBatchSize
// is not given.
const DefaultBatchSize = dse.DefaultBatchSize

// NewSweep builds a validated sweep engine over an evaluator. When ev
// also implements BatchEvaluator the engine dispatches cache misses in
// group-ordered batches (see WithBatchSize).
func NewSweep(ev PointEvaluator, opts ...SweepOption) (*Sweep, error) {
	return dse.NewSweep(ev, opts...)
}

// NewMemoryCache returns an empty memoisation cache, shareable between
// sweeps (keys embed the evaluator identity).
func NewMemoryCache() *MemoryCache { return dse.NewMemoryCache() }

// NewLRUCache returns an empty bounded memoisation cache holding at
// most entries results, with LRU eviction and singleflight
// de-duplication of concurrent identical evaluations. It panics when
// entries is not positive.
func NewLRUCache(entries int) *LRUCache { return cache.New(entries) }

// Sweep options (see the dse package for semantics).
func WithWorkers(n int) SweepOption                     { return dse.WithWorkers(n) }
func WithBatchSize(n int) SweepOption                   { return dse.WithBatchSize(n) }
func WithProgress(fn func(done, total int)) SweepOption { return dse.WithProgress(fn) }
func WithCache(c SweepCache) SweepOption                { return dse.WithCache(c) }
func WithTrace(w io.Writer) SweepOption                 { return dse.WithTrace(w) }
func WithEventHook(fn func(SweepEvent)) SweepOption     { return dse.WithEventHook(fn) }
func WithEvaluatorID(id string) SweepOption             { return dse.WithEvaluatorID(id) }
func WithRetry(p RetryPolicy) SweepOption               { return dse.WithRetry(p) }

// PaperSpace returns the Table III search grid.
func PaperSpace(noiseSteps int) Space { return dse.PaperSpace(noiseSteps) }

// ParetoFront extracts the non-dominated (power, quality) subset.
func ParetoFront(results []Result, q Quality) []Result { return dse.ParetoFront(results, q) }

// Optimum returns the minimum-power result meeting a quality floor.
func Optimum(results []Result, q Quality, minQuality float64) (Result, bool) {
	return dse.Optimum(results, q, minQuality)
}

// Goal functions.
var (
	// QualitySNR is the Fig 7a goal function.
	QualitySNR = dse.QualitySNR
	// QualityAccuracy is the Fig 7b goal function.
	QualityAccuracy = dse.QualityAccuracy
)

// Goal-directed search (budget-constrained adaptive exploration; see
// DESIGN.md §12). A *Sweep satisfies SearchEvaluator directly, so the
// search engine inherits caching, batching, retries and fault
// injection unchanged.
type (
	// SearchGoal selects the objective (SearchMaxQuality paired with a
	// Spec.Metric of "accuracy" or "snr", or SearchMinPower).
	SearchGoal = search.Goal
	// SearchSpec is a parsed, validated query: a goal plus power /
	// quality / area constraints, an evaluation budget and a seed.
	SearchSpec = search.Spec
	// SearchEvaluator is the batch contract the engine drives.
	SearchEvaluator = search.Evaluator
	// SearchFidelity is one rung of the fidelity schedule.
	SearchFidelity = search.Fidelity
	// SearchStrategy proposes batches and observes their results.
	SearchStrategy = search.Strategy
	// SearchConfig assembles a Run.
	SearchConfig = search.Config
	// SearchProgress is the per-batch callback payload.
	SearchProgress = search.Progress
	// SearchOutcome carries the discovered front, the best feasible
	// design, budget accounting and the partial flag.
	SearchOutcome = search.Outcome
	// SearchFront is the incremental Pareto front with hypervolume.
	SearchFront = search.Front
	// HalvingStrategy is the built-in successive-halving strategy.
	HalvingStrategy = search.Halving
)

// Search goal values.
const (
	SearchMaxQuality = search.MaxQuality
	SearchMinPower   = search.MinPower
)

// ParseSearchQuery parses the `goal *( "@" constraint )` grammar, e.g.
// "max-accuracy@power<=3e-6@area<=500".
func ParseSearchQuery(s string) (SearchSpec, error) { return search.ParseQuery(s) }

// NewHalvingStrategy builds the successive-halving strategy over a
// space for a spec; rungs is the number of fidelity rungs in play.
func NewHalvingStrategy(space Space, spec SearchSpec, rungs int) *HalvingStrategy {
	return search.NewHalving(space, spec, rungs)
}

// RunSearch executes a budget-constrained adaptive search.
func RunSearch(ctx context.Context, cfg SearchConfig) (SearchOutcome, error) {
	return search.Run(ctx, cfg)
}

// Power modelling (paper Table II).
type (
	// PowerBreakdown maps components to watts.
	PowerBreakdown = power.Breakdown
	// PowerComponent names a block.
	PowerComponent = power.Component
)

// Experiment reproduction (the paper's evaluation section).
type (
	// Suite owns a full reproduction run.
	Suite = experiments.Suite
	// SuiteOptions configures it.
	SuiteOptions = experiments.Options
	// Fig4Point / Fronts / Fig7bResult / Fig9Point / Fig10Front are the
	// figure payloads.
	Fig4Point   = experiments.Fig4Point
	Fronts      = experiments.Fronts
	Fig7bResult = experiments.Fig7b
	Fig9Point   = experiments.Fig9Point
	Fig10Front  = experiments.Fig10Front
	// VariantsResult compares the four front-end architectures.
	VariantsResult = experiments.VariantsResult
)

// NewSuite builds a reproduction suite.
func NewSuite(opts SuiteOptions) *Suite { return experiments.NewSuite(opts) }

// Workload scenarios (the registry of named applications the framework
// evaluates; SuiteOptions.Scenario selects one by name).
type (
	// Scenario is one registered workload: synthesiser, quality metric,
	// architecture set, default space and evaluator knobs behind a name.
	Scenario = scenario.Scenario
)

// DefaultScenario is the scenario selected when none is named — the
// paper's EEG epilepsy-detection chain.
const DefaultScenario = scenario.DefaultName

// LookupScenario resolves a scenario name ("" selects the default).
func LookupScenario(name string) (*Scenario, error) { return scenario.Lookup(name) }

// Scenarios returns every registered scenario in name order.
func Scenarios() []*Scenario { return scenario.All() }

// SNRVersusReference computes the SNR (dB) of a processed waveform against
// a reference after least-squares gain alignment — the Fig 7a goal
// function applied to a single record.
func SNRVersusReference(ref, out []float64) float64 {
	return dsp.SNRVersusReference(ref, out)
}

// Durable job journal (crash-safe append-only JSONL; see DESIGN.md §13).
// The efficsensed daemon journals job specs and result rows through it
// so interrupted sweeps resume without re-evaluating finished points;
// the same primitives are exported for embedders that run the serving
// layer in-process.
type (
	// WALRecord is one journaled entry: an opaque payload under a kind
	// discriminator, protected by a CRC32 checksum.
	WALRecord = wal.Record
	// WALLog is an open journal: goroutine-safe appends to one file.
	WALLog = wal.Log
	// WALStats is a journal's point-in-time accounting (appends, fsyncs,
	// dropped records, file size).
	WALStats = wal.Stats
)

// OpenWAL opens (creating if needed) the journal in dir, replays every
// intact record — truncating a torn tail, skipping corrupt records —
// and returns the log positioned for appending.
func OpenWAL(dir string) (*WALLog, []WALRecord, error) { return wal.Open(dir) }

// EncodeWALRecord renders one record as a self-checking JSONL line;
// DecodeWALRecord parses and checksum-verifies one line back.
func EncodeWALRecord(kind string, payload interface{}) ([]byte, error) {
	return wal.Encode(kind, payload)
}

// DecodeWALRecord parses one journal line, verifying its checksum. It
// never panics on hostile input.
func DecodeWALRecord(line []byte) (WALRecord, error) { return wal.Decode(line) }

// Fleet mode (multi-node efficsensed with consistent-hash cache
// peering; see DESIGN.md §15). A fleet splits the evaluation keyspace
// over a consistent-hash ring; each node fills remotely-owned cache
// misses from the key's owner before computing, and peer failures
// degrade to local compute — never an error row.
type (
	// ClusterMember identifies one node of a fleet: a stable name (ring
	// placement hashes the name, so a node keeps its keyspace segment
	// across address changes) and a reachable base URL.
	ClusterMember = cluster.Member
	// ClusterRing is an immutable consistent-hash ring over a member
	// set; lookups are lock-free.
	ClusterRing = cluster.Ring
	// ClusterPeers is a node's view of its peer group: the current
	// ring, the peer-protocol client with per-peer health, and the
	// hit/miss/fill/error accounting behind GET /v1/cluster.
	ClusterPeers = cluster.Peers
	// ClusterConfig sizes a peer group client.
	ClusterConfig = cluster.Config
	// ClusterStatus is a point-in-time snapshot of the group.
	ClusterStatus = cluster.Status
)

// NewClusterRing places each member at vnodes positions derived from
// its name; vnodes <= 0 selects the default (64).
func NewClusterRing(vnodes int, members []ClusterMember) *ClusterRing {
	return cluster.NewRing(vnodes, members)
}

// NewClusterPeers builds a peer-group client for the configured self
// node. The group is empty until SetMembers installs a roster.
func NewClusterPeers(cfg ClusterConfig) (*ClusterPeers, error) { return cluster.NewPeers(cfg) }

// ParseClusterMember parses one "name=addr" entry;
// ParseClusterMembers a comma-separated list of them (the -peers flag).
func ParseClusterMember(s string) (ClusterMember, error) { return cluster.ParseMember(s) }

// ParseClusterMembers parses "name=addr,name=addr" membership lists.
func ParseClusterMembers(s string) ([]ClusterMember, error) { return cluster.ParseMembers(s) }

// LoadClusterMembersFile reads a membership file: one name=addr per
// line, blank lines and #-comments ignored.
func LoadClusterMembersFile(path string) ([]ClusterMember, error) {
	return cluster.LoadMembersFile(path)
}
